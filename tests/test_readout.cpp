// Tests for src/readout: the bitline IR-drop ladder (Thevenin reduction
// against closed-form limits), sense-amplifier statistics (sampled outcomes
// vs the analytic probabilities), the composed read-error model, the Monte
// Carlo drivers' batched-vs-scalar and cross-thread bit identity, the
// analytic read-disturb model validated against the stochastic-LLG
// ensemble, and the march read-path integration.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mram/march.h"
#include "mram/mram_array.h"
#include "readout/bitline.h"
#include "readout/march_read.h"
#include "readout/read_error.h"
#include "readout/rer.h"
#include "readout/sense_amp.h"
#include "util/error.h"

namespace mram::rdo {
namespace {

using dev::MtjState;

dev::ElectricalModel nominal_cell() {
  const auto params = dev::MtjParams::reference_device(35e-9);
  return dev::ElectricalModel(params.electrical, params.stack.area());
}

// --- bitline ladder ---------------------------------------------------------

TEST(Bitline, ValidationRejectsBadConfigs) {
  BitlineParams params;
  params.rows = 0;
  EXPECT_THROW(BitlinePath(params, nominal_cell()), util::ConfigError);
  params = BitlineParams{};
  params.r_driver = 0.0;
  EXPECT_THROW(BitlinePath(params, nominal_cell()), util::ConfigError);
  params = BitlineParams{};
  params.r_leak = -1.0;
  EXPECT_THROW(BitlinePath(params, nominal_cell()), util::ConfigError);
}

TEST(Bitline, NoLeakLimitRecoversSeriesResistance) {
  // With the sneak paths effectively open, the port must reduce to the
  // ideal wire: v_th = v_read exactly (no current flows anywhere when the
  // port is open) and r_th = the series resistance of the row.
  BitlineParams params;
  params.rows = 16;
  params.r_leak = 1e15;
  const BitlinePath path(params, nominal_cell());
  const std::vector<int> column(16, 0);
  for (const std::size_t row : {std::size_t{0}, std::size_t{7},
                                std::size_t{15}}) {
    const ReadPort port = path.port(row, 0.2, column);
    EXPECT_NEAR(port.v_thevenin, 0.2, 0.2 * 1e-9);
    EXPECT_NEAR(port.r_thevenin, path.series_resistance(row),
                path.series_resistance(row) * 1e-6);
  }
}

TEST(Bitline, FarRowsSeeWeakerStifferPort) {
  const BitlinePath path(BitlineParams{}, nominal_cell());
  const std::vector<int> column(BitlineParams{}.rows, 0);
  double last_v = 1e9, last_r = 0.0;
  for (const std::size_t row : {std::size_t{0}, std::size_t{21},
                                std::size_t{42}, std::size_t{63}}) {
    const ReadPort port = path.port(row, 0.2, column);
    EXPECT_LT(port.v_thevenin, last_v);
    EXPECT_GT(port.r_thevenin, last_r);
    last_v = port.v_thevenin;
    last_r = port.r_thevenin;
  }
}

TEST(Bitline, ColumnDataModulatesSneakLoad) {
  // An all-P column leaks more (lower MTJ resistance in every sneak
  // branch), so the port sags slightly against an all-AP column.
  const BitlinePath path(BitlineParams{}, nominal_cell());
  const std::size_t rows = BitlineParams{}.rows;
  const ReadPort p = path.port(rows - 1, 0.2, std::vector<int>(rows, 0));
  const ReadPort ap = path.port(rows - 1, 0.2, std::vector<int>(rows, 1));
  EXPECT_LT(p.v_thevenin, ap.v_thevenin);
  EXPECT_GT(ap.v_thevenin / p.v_thevenin - 1.0, 0.0);
}

TEST(Bitline, PortArithmetic) {
  const ReadPort port{1.0, 1000.0};
  EXPECT_DOUBLE_EQ(port.current_into(1000.0), 0.5e-3);
  EXPECT_DOUBLE_EQ(port.voltage_across(1000.0), 0.5);
}

// --- sense amplifier --------------------------------------------------------

TEST(SenseAmp, ValidationRejectsNegativeSigmas) {
  SenseAmpParams params;
  params.offset_sigma = -1.0;
  EXPECT_THROW(SenseAmp{params}, util::ConfigError);
  params = SenseAmpParams{};
  params.metastable_band = -1.0;
  EXPECT_THROW(SenseAmp{params}, util::ConfigError);
}

TEST(SenseAmp, NoiselessAmpIsDeterministic) {
  SenseAmpParams params;
  params.offset_sigma = 0.0;
  params.reference_sigma = 0.0;
  params.metastable_band = 0.1e-6;
  const SenseAmp amp(params);
  util::Rng rng(1);
  EXPECT_EQ(amp.sample(10e-6, 5e-6, rng), SenseOutcome::kReadP);
  EXPECT_EQ(amp.sample(1e-6, 5e-6, rng), SenseOutcome::kReadAp);
  EXPECT_EQ(amp.sample(5.01e-6, 5e-6, rng), SenseOutcome::kBlocked);
  EXPECT_DOUBLE_EQ(amp.decision_error_probability(1e-6), 0.0);
  EXPECT_DOUBLE_EQ(amp.decision_error_probability(-1e-6), 1.0);
  EXPECT_DOUBLE_EQ(amp.blocked_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(amp.blocked_probability(1e-6), 0.0);
}

TEST(SenseAmp, SampledRatesMatchAnalyticProbabilities) {
  const SenseAmp amp(SenseAmpParams{});
  const double sigma = amp.total_sigma();
  EXPECT_NEAR(sigma, std::hypot(0.4e-6, 0.25e-6), 1e-12);
  // Margin of one sigma: appreciable error and blocked probabilities.
  const double i_ref = 10e-6;
  const double i_cell = i_ref + sigma;
  util::Rng rng(2);
  const int n = 20000;
  int wrong = 0, blocked = 0;
  for (int k = 0; k < n; ++k) {
    const SenseOutcome outcome = amp.sample(i_cell, i_ref, rng);
    wrong += outcome == SenseOutcome::kReadAp;
    blocked += outcome == SenseOutcome::kBlocked;
  }
  const double p_err = amp.decision_error_probability(sigma);
  const double p_blk = amp.blocked_probability(sigma);
  // Within four binomial sigmas.
  EXPECT_NEAR(wrong / static_cast<double>(n), p_err,
              4.0 * std::sqrt(p_err * (1.0 - p_err) / n));
  EXPECT_NEAR(blocked / static_cast<double>(n), p_blk,
              4.0 * std::sqrt(p_blk * (1.0 - p_blk) / n));
  // The analytic pieces are monotone in the margin.
  EXPECT_GT(amp.decision_error_probability(0.0),
            amp.decision_error_probability(sigma));
  EXPECT_GT(amp.blocked_probability(0.0), amp.blocked_probability(sigma));
}

// --- read-error model -------------------------------------------------------

ReadPathConfig small_path(double v_read = 0.2, std::size_t rows = 16) {
  ReadPathConfig path;
  path.v_read = v_read;
  path.bitline.rows = rows;
  return path;
}

TEST(ReadErrorModel, MarginShrinksAlongTheColumn) {
  const auto params = dev::MtjParams::reference_device(35e-9);
  const ReadErrorModel model(params, small_path());
  const std::vector<int> column(16, 0);
  const auto near = model.operating_point(0, column);
  const auto far = model.operating_point(15, column);
  EXPECT_GT(near.margin, far.margin);
  EXPECT_GT(far.margin, 0.0);
  // The midpoint reference sits between the state currents.
  EXPECT_GT(near.i_p, near.i_ref);
  EXPECT_GT(near.i_ref, near.i_ap);
  // And the error budget worsens with the row.
  const auto hz = model.device().intra_stray_field();
  EXPECT_GE(model.error_budget(far, MtjState::kAntiParallel, hz).decision,
            model.error_budget(near, MtjState::kAntiParallel, hz).decision);
}

TEST(ReadErrorModel, CellReadSolvesTheDivider) {
  const auto params = dev::MtjParams::reference_device(35e-9);
  const ReadPathConfig path = small_path();
  const ReadErrorModel model(params, path);
  const auto op = model.operating_point(7, std::vector<int>(16, 0));
  // Self-consistency of the AP fixed point: i * (r_th + r_read) + v = v_th.
  const auto read = model.cell_read(op.port, MtjState::kAntiParallel);
  EXPECT_NEAR(read.i_cell * (op.port.r_thevenin + path.transistor.r_read) +
                  read.v_mtj,
              op.port.v_thevenin, op.port.v_thevenin * 1e-9);
  // A higher TMR multiplier raises the AP resistance, lowering the current.
  const auto high = model.cell_read(op.port, MtjState::kAntiParallel, 1.5);
  EXPECT_LT(high.i_cell, read.i_cell);
  // The P branch is TMR-independent.
  EXPECT_DOUBLE_EQ(model.cell_read(op.port, MtjState::kParallel, 1.5).i_cell,
                   model.cell_read(op.port, MtjState::kParallel, 1.0).i_cell);
}

TEST(ReadErrorModel, DisturbProbabilityPhysics) {
  auto params = dev::MtjParams::reference_device(35e-9);
  params.delta0 = 14.0;
  const ReadErrorModel model(params, small_path());
  const double hz = model.device().intra_stray_field();
  // Zero duration: no disturb. Monotone in current for the AP state.
  EXPECT_DOUBLE_EQ(
      model.disturb_probability(MtjState::kAntiParallel, 10e-6, 0.0, hz), 0.0);
  const double lo =
      model.disturb_probability(MtjState::kAntiParallel, 6e-6, 30e-9, hz);
  const double hi =
      model.disturb_probability(MtjState::kAntiParallel, 12e-6, 30e-9, hz);
  EXPECT_GT(hi, lo);
  EXPECT_GT(lo, 0.0);
  // The read polarity stabilizes P: orders of magnitude below AP.
  EXPECT_LT(model.disturb_probability(MtjState::kParallel, 12e-6, 30e-9, hz),
            1e-6 * hi);
}

TEST(ReadErrorModel, MatchesDeviceReadDisturbAtEqualCurrent) {
  // MtjDevice::read_disturb_probability evaluated at an ideal bias and the
  // model's current-driven form agree when fed the same current.
  auto params = dev::MtjParams::reference_device(35e-9);
  params.delta0 = 14.0;
  const ReadErrorModel model(params, small_path());
  const dev::MtjDevice device(params);
  const double hz = device.intra_stray_field();
  const double v = 0.15;
  const double i = device.electrical().current(MtjState::kAntiParallel, v);
  EXPECT_NEAR(device.read_disturb_probability(MtjState::kAntiParallel, v,
                                              30e-9, hz),
              model.disturb_probability(MtjState::kAntiParallel, i, 30e-9, hz),
              1e-12);
}

// --- measure_rer ------------------------------------------------------------

RerConfig rer_config() {
  RerConfig cfg;
  cfg.path = small_path(0.04);  // starved margin: measurable error rates
  cfg.trials = 600;
  cfg.hz_stray = dev::MtjDevice(cfg.device).intra_stray_field();
  return cfg;
}

TEST(MeasureRer, BatchedMatchesScalarBitwise) {
  auto cfg = rer_config();
  cfg.batch_lanes = 8;
  util::Rng rng_a(11);
  const auto batched = measure_rer(cfg, rng_a);
  cfg.batch_lanes = 0;
  util::Rng rng_b(11);
  const auto scalar = measure_rer(cfg, rng_b);
  EXPECT_EQ(batched.decision_errors, scalar.decision_errors);
  EXPECT_EQ(batched.blocked, scalar.blocked);
  EXPECT_EQ(batched.disturbs, scalar.disturbs);
  // Bitwise: the accumulation order is identical, not just the counts.
  EXPECT_EQ(batched.mean_margin, scalar.mean_margin);
  EXPECT_GT(batched.read_errors, 0u);
}

TEST(MeasureRer, BitIdenticalAcrossThreadCounts) {
  auto cfg = rer_config();
  cfg.runner.threads = 1;
  util::Rng rng_a(12);
  const auto serial = measure_rer(cfg, rng_a);
  cfg.runner.threads = 4;
  util::Rng rng_b(12);
  const auto parallel = measure_rer(cfg, rng_b);
  EXPECT_EQ(serial.read_errors, parallel.read_errors);
  EXPECT_EQ(serial.disturbs, parallel.disturbs);
  EXPECT_EQ(serial.mean_margin, parallel.mean_margin);
}

TEST(MeasureRer, MoreReadVoltageFewerDecisionErrors) {
  auto cfg = rer_config();
  util::Rng rng(13);
  const auto starved = measure_rer(cfg, rng);
  cfg.path.v_read = 0.2;
  const auto healthy = measure_rer(cfg, rng);
  EXPECT_GT(starved.rer, healthy.rer);
  EXPECT_EQ(healthy.read_errors, 0u);
  EXPECT_GT(starved.op.margin, 0.0);
  EXPECT_LT(starved.op.margin, healthy.op.margin);
}

// --- measure_read_disturb ---------------------------------------------------

ReadDisturbConfig disturb_config() {
  ReadDisturbConfig cfg;
  cfg.device.delta0 = 14.0;  // thermally active: measurable disturb rates
  cfg.path = small_path(0.14);
  cfg.path.t_read = 30e-9;
  cfg.trials = 150;
  cfg.hz_stray = dev::MtjDevice(cfg.device).intra_stray_field();
  return cfg;
}

TEST(MeasureReadDisturb, BatchedMatchesScalarBitwise) {
  // Odd trial count: remainder lane-blocks included. The batched kernel
  // shares the scalar path's stochastic Heun step, so switch decisions AND
  // switch times must agree bitwise, at any lane width.
  auto cfg = disturb_config();
  cfg.trials = 37;
  cfg.batch_lanes = 0;
  util::Rng rng_s(21);
  const auto scalar = measure_read_disturb(cfg, rng_s);
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{8}}) {
    cfg.batch_lanes = lanes;
    util::Rng rng_b(21);
    const auto batched = measure_read_disturb(cfg, rng_b);
    EXPECT_EQ(batched.disturbed, scalar.disturbed) << lanes;
    EXPECT_EQ(batched.mean_switch_time, scalar.mean_switch_time) << lanes;
    EXPECT_EQ(batched.rate, scalar.rate) << lanes;
  }
  EXPECT_GT(scalar.disturbed, 0u);
}

TEST(MeasureReadDisturb, BitIdenticalAcrossThreadCounts) {
  auto cfg = disturb_config();
  cfg.trials = 64;
  cfg.runner.threads = 1;
  util::Rng rng_a(22);
  const auto serial = measure_read_disturb(cfg, rng_a);
  cfg.runner.threads = 4;
  util::Rng rng_b(22);
  const auto parallel = measure_read_disturb(cfg, rng_b);
  EXPECT_EQ(serial.disturbed, parallel.disturbed);
  EXPECT_EQ(serial.mean_switch_time, parallel.mean_switch_time);
}

TEST(MeasureReadDisturb, LongerStrobesDisturbMore) {
  auto cfg = disturb_config();
  cfg.trials = 150;
  util::Rng rng(23);
  cfg.duration = 5e-9;
  const auto brief = measure_read_disturb(cfg, rng);
  cfg.duration = 60e-9;
  const auto lingering = measure_read_disturb(cfg, rng);
  EXPECT_GT(lingering.rate, brief.rate);
}

TEST(MeasureReadDisturb, StoredParallelIsStabilized) {
  auto cfg = disturb_config();
  cfg.stored = MtjState::kParallel;
  cfg.trials = 100;
  util::Rng rng(24);
  const auto r = measure_read_disturb(cfg, rng);
  EXPECT_EQ(r.disturbed, 0u);
  EXPECT_LT(r.analytic_probability, 1e-9);
}

TEST(MeasureReadDisturb, AnalyticModelTracksTheLlgEnsemble) {
  // The satellite validation that promoted read_disturb_probability out of
  // its stub: the analytic thermal-activation model with the *quadratic*
  // STT-reduced barrier Delta (1 - I/Ic)^2 tracks the stochastic-LLG
  // ensemble within a factor of 3 across the measurable range. The linear
  // barrier this model shipped with originally under-predicts these points
  // by 1-2 orders of magnitude and fails this bound.
  auto cfg = disturb_config();
  cfg.trials = 400;
  for (const double v_read : {0.10, 0.12, 0.14}) {
    cfg.path = small_path(v_read);
    cfg.path.t_read = 30e-9;
    util::Rng rng(25);
    const auto r = measure_read_disturb(cfg, rng);
    ASSERT_GT(r.disturbed, 5u) << v_read;
    ASSERT_LT(r.disturbed, cfg.trials) << v_read;
    EXPECT_GT(r.analytic_probability, r.rate / 3.0) << v_read;
    EXPECT_LT(r.analytic_probability, r.rate * 3.0) << v_read;
  }
}

// --- read_yield -------------------------------------------------------------

TEST(ReadYield, DeterministicAndSpecMonotone) {
  ReadYieldConfig cfg;
  cfg.path = small_path(0.2, 32);
  cfg.samples = 200;
  cfg.spec.min_margin_sigma = 7.0;
  util::Rng rng_a(31);
  const auto a = read_yield(cfg, rng_a);
  // Scalar reference and 4-thread runs reproduce it exactly.
  cfg.batch_lanes = 0;
  cfg.runner.threads = 4;
  util::Rng rng_b(31);
  const auto b = read_yield(cfg, rng_b);
  EXPECT_EQ(a.pass_margin, b.pass_margin);
  EXPECT_EQ(a.pass_disturb, b.pass_disturb);
  EXPECT_EQ(a.pass_both, b.pass_both);
  EXPECT_EQ(a.sampled, 200u);
  // A tighter margin spec can only fail more devices.
  cfg.spec.min_margin_sigma = 9.5;
  util::Rng rng_c(31);
  const auto tight = read_yield(cfg, rng_c);
  EXPECT_LE(tight.pass_margin, a.pass_margin);
  EXPECT_LT(tight.yield, 1.0);
  EXPECT_GT(a.pass_disturb, 0u);
}

TEST(ReadYield, SpecValidation) {
  ReadYieldSpec spec;
  spec.min_margin_sigma = 0.0;
  EXPECT_THROW(spec.validate(), util::ConfigError);
  spec = ReadYieldSpec{};
  spec.max_disturb = 1.0;
  EXPECT_THROW(spec.validate(), util::ConfigError);
}

// --- march integration ------------------------------------------------------

TEST(MarchReadPath, StarvedMarginYieldsTransientReadFaults) {
  // Stable array + strong pulse + a starved sense margin: every fault is a
  // transient read fault (the stored data stays correct throughout).
  mem::ArrayConfig cfg;
  cfg.device = dev::MtjParams::reference_device(35e-9);
  cfg.pitch = 2.0 * 35e-9;
  cfg.rows = cfg.cols = 5;
  mem::MramArray array(cfg);

  ReadPathConfig path;
  path.bitline.rows = cfg.rows;
  path.v_read = 0.02;  // deep starvation: lots of misreads
  const ReadErrorModel model(cfg.device, path);
  const auto hook = make_march_read_hook(model, cfg.temperature);

  util::Rng rng(41);
  const auto result = mem::run_march(array, mem::march_c_minus(),
                                     mem::WritePulse{1.2, 100e-9}, rng, 0.0,
                                     nullptr, hook);
  EXPECT_GT(result.count(mem::FaultClass::kReadFault), 0u);
  EXPECT_EQ(result.count(mem::FaultClass::kWriteFault), 0u);
  EXPECT_EQ(result.count(mem::FaultClass::kRetentionFault), 0u);
  EXPECT_EQ(result.failed_writes, 0u);
  // The stored data survived the whole march: the final element verified
  // every cell reads 0 and the faults were all sense-path transients.
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(array.read(r, c), 0);
    }
  }
}

TEST(MarchReadPath, ReadHammerDetectsDisturbFaults) {
  // March C- masks AP->P read disturbs (each r1 is followed by a healing
  // w0); back-to-back r1 reads catch them as read-disturb faults.
  mem::ArrayConfig cfg;
  cfg.device = dev::MtjParams::reference_device(35e-9);
  cfg.device.delta0 = 16.0;
  cfg.pitch = 2.0 * 35e-9;
  cfg.rows = cfg.cols = 5;
  mem::MramArray array(cfg);

  ReadPathConfig path;
  path.bitline.rows = cfg.rows;
  path.v_read = 0.14;
  path.t_read = 30e-9;
  const ReadErrorModel model(cfg.device, path);
  const auto hook = make_march_read_hook(model, cfg.temperature);

  const std::vector<mem::MarchElement> hammer = {
      {mem::MarchOrder::kAscending, {mem::MarchOp::kW1}},
      {mem::MarchOrder::kAscending,
       {mem::MarchOp::kR1, mem::MarchOp::kR1, mem::MarchOp::kR1}},
  };
  util::Rng rng(42);
  const auto result = mem::run_march(array, hammer,
                                     mem::WritePulse{1.2, 100e-9}, rng, 0.0,
                                     nullptr, hook);
  EXPECT_GT(result.count(mem::FaultClass::kReadDisturbFault), 0u);
  EXPECT_EQ(result.count(mem::FaultClass::kWriteFault), 0u);
}

TEST(MarchReadPath, HookRejectsMismatchedColumnLength) {
  mem::ArrayConfig cfg;
  cfg.device = dev::MtjParams::reference_device(35e-9);
  cfg.pitch = 2.0 * 35e-9;
  cfg.rows = cfg.cols = 5;
  mem::MramArray array(cfg);
  ReadPathConfig path;  // default 64 rows != the 5-row array
  const ReadErrorModel model(cfg.device, path);
  const auto hook = make_march_read_hook(model);
  util::Rng rng(43);
  EXPECT_THROW(hook(array, 0, 0, rng), util::ContractViolation);
}

TEST(MarchReadPath, FaultClassNames) {
  EXPECT_STREQ(mem::to_string(mem::FaultClass::kReadFault), "read");
  EXPECT_STREQ(mem::to_string(mem::FaultClass::kReadDisturbFault),
               "read-disturb");
}

}  // namespace
}  // namespace mram::rdo
