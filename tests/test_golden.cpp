// Golden-output regression tests: the fig2b and fig5 scenarios, run at the
// default seed, must reproduce the series committed under data/golden_*.csv
// within tolerance. A model change that drifts a figure now fails ctest
// instead of going unnoticed; intentional drift is ratified by regenerating
// the goldens:
//
//   mram_scenarios run fig2b_intra_vs_ecd fig5_tw --format csv --out OUT \
//                  --seed 2020 --data data
//   cp OUT/fig2b_intra_vs_ecd__hz_intra_vs_ecd.csv data/golden_fig2b.csv
//   cp OUT/fig5_tw__tw_vs_vp.csv data/golden_fig5_tw.csv

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/registry.h"

namespace mram::scn {
namespace {

constexpr const char* kDataDir = MRAM_SOURCE_DIR "/data";

/// Splits one CSV line on commas (the golden tables contain no quoted
/// commas; the quoting path is covered by test_scenario).
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(split_csv_line(line));
  }
  return rows;
}

bool parse_number(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

/// Cell-wise comparison: numeric cells within abs+rel tolerance, everything
/// else byte-exact.
void expect_matches_golden(const ResultTable& table,
                           const std::string& golden_path, double abs_tol,
                           double rel_tol) {
  const auto golden = read_csv(golden_path);
  ASSERT_GE(golden.size(), 2u) << golden_path << " has no data rows";
  ASSERT_EQ(golden[0], table.columns) << "header drift vs " << golden_path;
  ASSERT_EQ(golden.size() - 1, table.rows.size())
      << "row count drift vs " << golden_path;

  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& expected = golden[r + 1];
    ASSERT_EQ(expected.size(), table.rows[r].size())
        << golden_path << " row " << r;
    for (std::size_t c = 0; c < expected.size(); ++c) {
      const std::string& actual = table.rows[r][c].text;
      double want = 0.0, got = 0.0;
      if (parse_number(expected[c], &want) && parse_number(actual, &got)) {
        EXPECT_NEAR(got, want, abs_tol + rel_tol * std::abs(want))
            << golden_path << " row " << r << " col '" << table.columns[c]
            << "'";
      } else {
        EXPECT_EQ(actual, expected[c])
            << golden_path << " row " << r << " col '" << table.columns[c]
            << "'";
      }
    }
  }
}

ResultSet run_scenario(const std::string& name) {
  eng::RunnerConfig cfg;
  cfg.threads = 2;  // any thread count reproduces the goldens
  eng::MonteCarloRunner runner(cfg);
  ScenarioContext ctx{runner};
  ctx.data_dir = kDataDir;
  return ScenarioRegistry::global().at(name).run(ctx);
}

TEST(GoldenOutputs, Fig2bMatchesCommittedSeries) {
  const ResultSet results = run_scenario("fig2b_intra_vs_ecd");
  const ResultTable* table = results.find("hz_intra_vs_ecd");
  ASSERT_NE(table, nullptr);
  // Wide tolerance on the Oe-scale columns: catches model/figure drift
  // (tens of Oe) while riding out last-digit formatting differences.
  expect_matches_golden(*table, std::string(kDataDir) + "/golden_fig2b.csv",
                        1e-4, 2e-3);
}

TEST(GoldenOutputs, Fig5MatchesCommittedSeries) {
  const ResultSet results = run_scenario("fig5_tw");
  const ResultTable* table = results.find("tw_vs_vp");
  ASSERT_NE(table, nullptr);
  expect_matches_golden(*table, std::string(kDataDir) + "/golden_fig5_tw.csv",
                        1e-4, 2e-3);
}

}  // namespace
}  // namespace mram::scn
