// Unit tests for src/device: stack geometry, electrical model, thermal model
// and the paper's Eqs. 2-5 on the calibrated reference device.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "device/electrical.h"
#include "device/mtj_device.h"
#include "device/stack_geometry.h"
#include "device/switching.h"
#include "device/thermal.h"
#include "util/constants.h"
#include "util/error.h"
#include "util/units.h"

namespace mram::dev {
namespace {

using util::a_per_m_to_oe;
using util::ConfigError;
using util::oe_to_a_per_m;

MtjParams reference35() { return MtjParams::reference_device(35e-9); }

// --- states and directions --------------------------------------------------

TEST(Switching, StateBitMapping) {
  EXPECT_EQ(state_to_bit(MtjState::kParallel), 0);
  EXPECT_EQ(state_to_bit(MtjState::kAntiParallel), 1);
  EXPECT_EQ(bit_to_state(0), MtjState::kParallel);
  EXPECT_EQ(bit_to_state(1), MtjState::kAntiParallel);
}

TEST(Switching, DirectionEndpoints) {
  EXPECT_EQ(initial_state(SwitchDirection::kApToP), MtjState::kAntiParallel);
  EXPECT_EQ(final_state(SwitchDirection::kApToP), MtjState::kParallel);
  EXPECT_EQ(initial_state(SwitchDirection::kPToAp), MtjState::kParallel);
  EXPECT_EQ(final_state(SwitchDirection::kPToAp), MtjState::kAntiParallel);
}

TEST(Switching, PaperSignConventions) {
  // Eq. 2: '+' for P->AP, '-' for AP->P; Eq. 5: '+' for Delta_P.
  EXPECT_EQ(stray_sign(SwitchDirection::kPToAp), +1);
  EXPECT_EQ(stray_sign(SwitchDirection::kApToP), -1);
  EXPECT_EQ(stray_sign(MtjState::kParallel), +1);
  EXPECT_EQ(stray_sign(MtjState::kAntiParallel), -1);
}

// --- stack geometry ---------------------------------------------------------

TEST(StackGeometry, LayerPlacement) {
  StackGeometry g;
  EXPECT_DOUBLE_EQ(g.layer_center_z(Layer::kFreeLayer), 0.0);
  // RL center: t_free/2 + t_barrier + t_reference/2 below the FL mid-plane.
  EXPECT_NEAR(g.layer_center_z(Layer::kReferenceLayer),
              -(1.0e-9 + 1.0e-9 + 0.8e-9), 1e-15);
  EXPECT_NEAR(g.layer_center_z(Layer::kHardLayer),
              -(1.0e-9 + 1.0e-9 + 1.6e-9 + 0.4e-9 + 1.2e-9), 1e-15);
  EXPECT_LT(g.layer_center_z(Layer::kHardLayer),
            g.layer_center_z(Layer::kReferenceLayer));
}

TEST(StackGeometry, SafPolarityIsAntiparallel) {
  StackGeometry g;
  EXPECT_EQ(g.layer_polarity(Layer::kReferenceLayer), +1);
  EXPECT_EQ(g.layer_polarity(Layer::kHardLayer), -1);
  EXPECT_EQ(g.layer_polarity(Layer::kFreeLayer, MtjState::kParallel), +1);
  EXPECT_EQ(g.layer_polarity(Layer::kFreeLayer, MtjState::kAntiParallel), -1);
}

TEST(StackGeometry, AreaAndVolume) {
  StackGeometry g;
  g.ecd = 35e-9;
  const double r = 17.5e-9;
  EXPECT_NEAR(g.area(), util::kPi * r * r, 1e-25);
  EXPECT_NEAR(g.volume(), g.area() * g.t_free, 1e-33);
}

TEST(StackGeometry, SourcePlacementFollowsCell) {
  StackGeometry g;
  const num::Vec3 cell{90e-9, -90e-9, 0.0};
  const auto src = g.source_for(Layer::kHardLayer, cell);
  EXPECT_DOUBLE_EQ(src.center.x, 90e-9);
  EXPECT_DOUBLE_EQ(src.center.y, -90e-9);
  EXPECT_NEAR(src.center.z, g.layer_center_z(Layer::kHardLayer), 1e-18);
  EXPECT_EQ(src.polarity, -1);
  EXPECT_DOUBLE_EQ(src.ms_t, g.ms_t_hard);
  EXPECT_DOUBLE_EQ(src.radius, g.radius());
}

TEST(StackGeometry, ValidationRejectsBadConfigs) {
  StackGeometry g;
  g.ecd = 0.0;
  EXPECT_THROW(g.validate(), ConfigError);
  g = StackGeometry{};
  g.t_barrier = -1e-9;
  EXPECT_THROW(g.validate(), ConfigError);
  g = StackGeometry{};
  g.reference_polarity = 0;
  EXPECT_THROW(g.validate(), ConfigError);
  g = StackGeometry{};
  g.sub_loops = 0;
  EXPECT_THROW(g.validate(), ConfigError);
  EXPECT_NO_THROW(StackGeometry{}.validate());
}

// --- electrical model -------------------------------------------------------

TEST(Electrical, RpFromRaAndArea) {
  // eCD = 35 nm, RA = 4.5 Ohm*um^2 -> R_P = RA / A = 4677 Ohm.
  StackGeometry g;
  g.ecd = 35e-9;
  const ElectricalModel em(ElectricalParams{}, g.area());
  EXPECT_NEAR(em.rp(), 4.5e-12 / g.area(), 1e-6);
  EXPECT_NEAR(em.rp(), 4677.0, 5.0);
}

TEST(Electrical, TmrBiasRollOff) {
  StackGeometry g;
  const ElectricalModel em(ElectricalParams{}, g.area());
  EXPECT_NEAR(em.tmr(0.0), 1.0, 1e-12);
  // TMR halves at Vh.
  EXPECT_NEAR(em.tmr(em.params().vh), 0.5, 1e-12);
  EXPECT_GT(em.tmr(0.3), em.tmr(0.9));
}

TEST(Electrical, ResistanceByState) {
  StackGeometry g;
  const ElectricalModel em(ElectricalParams{}, g.area());
  EXPECT_DOUBLE_EQ(em.resistance(MtjState::kParallel, 0.5), em.rp());
  EXPECT_GT(em.resistance(MtjState::kAntiParallel, 0.1), em.rp());
  EXPECT_NEAR(em.rap0(), 2.0 * em.rp(), 1e-9);  // TMR0 = 100 %
  // AP resistance falls with bias; P resistance does not.
  EXPECT_GT(em.resistance(MtjState::kAntiParallel, 0.1),
            em.resistance(MtjState::kAntiParallel, 1.0));
}

TEST(Electrical, CurrentIsOhmic) {
  StackGeometry g;
  const ElectricalModel em(ElectricalParams{}, g.area());
  const double v = 0.8;
  EXPECT_NEAR(em.current(MtjState::kParallel, v), v / em.rp(), 1e-12);
}

TEST(Electrical, EcdRoundTrip) {
  // Sec. III: eCD = sqrt(4/pi * RA/RP). Paper example: RP from a 55 nm dot.
  StackGeometry g;
  g.ecd = 55e-9;
  const ElectricalModel em(ElectricalParams{}, g.area());
  EXPECT_NEAR(ElectricalModel::ecd_from_rp(4.5e-12, em.rp()), 55e-9, 1e-12);
  EXPECT_THROW(ElectricalModel::ecd_from_rp(-1.0, 100.0),
               util::ContractViolation);
}

TEST(Electrical, Validation) {
  ElectricalParams p;
  p.ra = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = ElectricalParams{};
  p.vh = -0.5;
  EXPECT_THROW(p.validate(), ConfigError);
}

// --- thermal model ----------------------------------------------------------

TEST(Thermal, BlochLawBasics) {
  ThermalModel tm;
  EXPECT_NEAR(tm.ms_scale(300.0), 1.0, 1e-12);
  EXPECT_GT(tm.ms_scale(273.15), 1.0);
  EXPECT_LT(tm.ms_scale(423.15), 1.0);
  EXPECT_THROW(tm.bloch(1000.0), util::ContractViolation);
}

TEST(Thermal, Delta0ScaleCombinesMsAndTemperature) {
  ThermalModel tm;
  const double t = 400.0;
  EXPECT_NEAR(tm.delta0_scale(t), tm.ms_scale(t) * 300.0 / t, 1e-12);
  // Fig. 6a span: Delta0 at 0 C is ~1.1x the RT value, ~0.6x at 150 C.
  EXPECT_NEAR(tm.delta0_scale(273.15), 1.125, 0.03);
  EXPECT_NEAR(tm.delta0_scale(423.15), 0.59, 0.04);
}

TEST(Thermal, Validation) {
  ThermalModel tm;
  tm.curie_temperature = -5.0;
  EXPECT_THROW(tm.validate(), ConfigError);
  tm = ThermalModel{};
  tm.reference_temperature = 1200.0;
  EXPECT_THROW(tm.validate(), ConfigError);
}

// --- MtjParams / reference device -------------------------------------------

TEST(MtjParams, ReferenceDeviceScalesDelta0WithArea) {
  const auto p35 = reference35();
  EXPECT_NEAR(p35.delta0, 45.5, 1e-9);
  // Below the nucleation cap the scaling is quadratic in eCD...
  const auto p40 = MtjParams::reference_device(40e-9);
  EXPECT_NEAR(p40.delta0, 45.5 * (40.0 * 40.0) / (35.0 * 35.0), 1e-6);
  // ...and large devices saturate at the nucleation-limited cap.
  const auto p55 = MtjParams::reference_device(55e-9);
  EXPECT_NEAR(p55.delta0, 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(p55.stack.ecd, 55e-9);
  EXPECT_DOUBLE_EQ(p55.hk, p35.hk);  // Hk is size-independent in this model
}

TEST(MtjParams, ValidationRejectsBadValues) {
  auto p = reference35();
  p.hk = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = reference35();
  p.polarization = 1.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p = reference35();
  p.sun_prefactor = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = reference35();
  p.attempt_time = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

// --- intra-cell stray field -------------------------------------------------

TEST(MtjDevice, IntraFieldIsNegativeAndCalibrated) {
  const MtjDevice dev(reference35());
  const double hz = dev.intra_stray_field();
  // Calibrated model: about -393 Oe at eCD = 35 nm (paper-implied -366 Oe,
  // Fig. 2b anchor -400 Oe).
  EXPECT_LT(hz, 0.0);
  EXPECT_NEAR(a_per_m_to_oe(hz), -392.6, 5.0);
}

TEST(MtjDevice, IntraFieldGrowsAsDeviceShrinks) {
  double prev = 0.0;
  for (double ecd : {175e-9, 120e-9, 90e-9, 55e-9, 35e-9, 20e-9}) {
    const MtjDevice dev(MtjParams::reference_device(ecd));
    const double mag = std::abs(dev.intra_stray_field());
    EXPECT_GT(mag, prev) << "eCD = " << ecd;
    prev = mag;
  }
}

TEST(MtjDevice, IntraFieldWeakerAtEdgeThanCenter) {
  // Fig. 3d: |Hz| is smaller at the FL edge than at the center.
  const MtjDevice dev(reference35());
  const double center = std::abs(dev.intra_stray_field_at(0.0));
  const double edge = std::abs(dev.intra_stray_field_at(0.45 * 35e-9));
  EXPECT_LT(edge, center);
}

// --- Eq. 2: critical current ------------------------------------------------

TEST(MtjDevice, IntrinsicIcMatchesPaper) {
  const MtjDevice dev(reference35());
  EXPECT_NEAR(util::a_to_ua(dev.ic0()), 57.2, 0.05);
}

TEST(MtjDevice, IcWithoutStrayIsSymmetric) {
  const MtjDevice dev(reference35());
  EXPECT_DOUBLE_EQ(dev.ic(SwitchDirection::kApToP, 0.0),
                   dev.ic(SwitchDirection::kPToAp, 0.0));
}

TEST(MtjDevice, IntraStrayShiftsIcAsInFig4c) {
  // Paper: Ic(AP->P) = 61.7 uA (+7 %), Ic(P->AP) = 52.8 uA (-7 %) under
  // Hz_s_intra. Our calibrated field gives an 8.5 % shift; assert direction
  // and magnitude band.
  const MtjDevice dev(reference35());
  const double hz = dev.intra_stray_field();
  const double up = util::a_to_ua(dev.ic(SwitchDirection::kApToP, hz));
  const double dn = util::a_to_ua(dev.ic(SwitchDirection::kPToAp, hz));
  EXPECT_GT(up, 60.5);
  EXPECT_LT(up, 63.5);
  EXPECT_GT(dn, 51.0);
  EXPECT_LT(dn, 53.5);
  // Symmetric about the intrinsic value.
  EXPECT_NEAR(up + dn, 2.0 * 57.2, 0.1);
}

TEST(MtjDevice, IcLinearInStrayField) {
  const MtjDevice dev(reference35());
  const double h1 = oe_to_a_per_m(-100.0);
  const double h2 = oe_to_a_per_m(-200.0);
  const double ic0 = dev.ic0();
  const double d1 = dev.ic(SwitchDirection::kApToP, h1) - ic0;
  const double d2 = dev.ic(SwitchDirection::kApToP, h2) - ic0;
  EXPECT_NEAR(d2, 2.0 * d1, std::abs(d1) * 1e-9);
}

// --- Eqs. 3-4: Sun switching time -------------------------------------------

TEST(MtjDevice, SwitchingTimeCalibratedAt072V) {
  // Fig. 5 anchor: tw(AP->P) ~ 20 ns at Vp = 0.72 V with intra-cell stray
  // field only.
  const MtjDevice dev(reference35());
  const double tw =
      dev.switching_time(SwitchDirection::kApToP, 0.72, dev.intra_stray_field());
  EXPECT_NEAR(util::s_to_ns(tw), 20.0, 1.0);
}

TEST(MtjDevice, SwitchingTimeDecreasesWithVoltage) {
  const MtjDevice dev(reference35());
  const double hz = dev.intra_stray_field();
  double prev = std::numeric_limits<double>::infinity();
  for (double vp : {0.7, 0.8, 0.9, 1.0, 1.1, 1.2}) {
    const double tw = dev.switching_time(SwitchDirection::kApToP, vp, hz);
    EXPECT_LT(tw, prev) << "Vp = " << vp;
    prev = tw;
  }
  // Fig. 5 range: about 25 ns at 0.7 V down to about 5 ns at 1.2 V.
  EXPECT_LT(util::s_to_ns(prev), 8.0);
}

TEST(MtjDevice, StrayFieldSlowsApToP) {
  // Fig. 5: tw(AP->P) is larger with Hz_stray < 0 than without.
  const MtjDevice dev(reference35());
  const double hz = dev.intra_stray_field();
  for (double vp : {0.72, 0.9, 1.1}) {
    EXPECT_GT(dev.switching_time(SwitchDirection::kApToP, vp, hz),
              dev.switching_time(SwitchDirection::kApToP, vp, 0.0));
  }
}

TEST(MtjDevice, StrayImpactShrinksAtHighVoltage) {
  // Fig. 5: "the larger the voltage, the smaller the impact of the stray
  // field on tw" (relative gap).
  const MtjDevice dev(reference35());
  const double hz = dev.intra_stray_field();
  auto rel_gap = [&](double vp) {
    const double t0 = dev.switching_time(SwitchDirection::kApToP, vp, 0.0);
    const double t1 = dev.switching_time(SwitchDirection::kApToP, vp, hz);
    return (t1 - t0) / t0;
  };
  EXPECT_GT(rel_gap(0.72), rel_gap(1.2));
}

TEST(MtjDevice, SubCriticalDriveGivesInfiniteTw) {
  const MtjDevice dev(reference35());
  // At a very low voltage the current is below Ic.
  const double tw = dev.switching_time(SwitchDirection::kApToP, 0.3, 0.0);
  EXPECT_TRUE(std::isinf(tw));
  EXPECT_LT(dev.overdrive(SwitchDirection::kApToP, 0.3, 0.0), 0.0);
}

TEST(MtjDevice, OverdriveUsesInitialStateResistance) {
  const MtjDevice dev(reference35());
  const double vp = 1.0;
  const double i_ap = dev.electrical().current(MtjState::kAntiParallel, vp);
  EXPECT_NEAR(dev.overdrive(SwitchDirection::kApToP, vp, 0.0),
              i_ap - dev.ic0(), 1e-12);
}

// --- Eq. 5: thermal stability -----------------------------------------------

TEST(MtjDevice, DeltaWithoutStrayIsDelta0) {
  const MtjDevice dev(reference35());
  EXPECT_NEAR(dev.delta(MtjState::kParallel, 0.0), 45.5, 1e-9);
  EXPECT_NEAR(dev.delta(MtjState::kAntiParallel, 0.0), 45.5, 1e-9);
}

TEST(MtjDevice, IntraStraySplitsDeltaStates) {
  // Fig. 6a: the intra-cell stray field (negative z) destabilizes P and
  // stabilizes AP; the paper reports a ~30 % split.
  const MtjDevice dev(reference35());
  const double hz = dev.intra_stray_field();
  const double dp = dev.delta(MtjState::kParallel, hz);
  const double dap = dev.delta(MtjState::kAntiParallel, hz);
  EXPECT_LT(dp, 45.5);
  EXPECT_GT(dap, 45.5);
  const double split = (dap - dp) / dap;
  EXPECT_GT(split, 0.2);
  EXPECT_LT(split, 0.45);
}

TEST(MtjDevice, DeltaQuadraticInField) {
  const MtjDevice dev(reference35());
  const auto& p = dev.params();
  const double h = oe_to_a_per_m(-300.0);
  const double expected = 45.5 * std::pow(1.0 + h / p.hk, 2.0);
  EXPECT_NEAR(dev.delta(MtjState::kParallel, h), expected, 1e-9);
}

TEST(MtjDevice, DeltaFallsWithTemperature) {
  const MtjDevice dev(reference35());
  double prev = 1e300;
  for (double tc : {0.0, 50.0, 100.0, 150.0}) {
    const double d =
        dev.delta(MtjState::kParallel, 0.0, util::celsius_to_kelvin(tc));
    EXPECT_LT(d, prev);
    prev = d;
  }
  // Fig. 6a: Delta0 drops from ~51 at 0 C to ~27 at 150 C.
  EXPECT_NEAR(dev.delta(MtjState::kParallel, 0.0, 273.15), 51.0, 2.5);
  EXPECT_NEAR(dev.delta(MtjState::kParallel, 0.0, 423.15), 27.0, 2.5);
}

TEST(MtjDevice, RetentionTimeIsArrhenius) {
  const MtjDevice dev(reference35());
  const double d = dev.delta(MtjState::kParallel, 0.0);
  EXPECT_NEAR(dev.retention_time(MtjState::kParallel, 0.0),
              1e-9 * std::exp(d), 1e-9 * std::exp(d) * 1e-9);
  // Retention of the destabilized state is shorter.
  const double hz = dev.intra_stray_field();
  EXPECT_LT(dev.retention_time(MtjState::kParallel, hz),
            dev.retention_time(MtjState::kAntiParallel, hz));
}

// --- stochastic switching ---------------------------------------------------

TEST(MtjDevice, BarrierClampsAtAnisotropyField) {
  const MtjDevice dev(reference35());
  // Beyond |Hk| the barrier for the destabilized state vanishes.
  const double h = -1.5 * dev.params().hk;
  EXPECT_DOUBLE_EQ(dev.barrier(MtjState::kParallel, h), 0.0);
}

TEST(MtjDevice, FlipProbabilityMonotoneInDwellAndField) {
  const MtjDevice dev(reference35());
  const double h1 = oe_to_a_per_m(-1800.0);
  const double h2 = oe_to_a_per_m(-2100.0);
  const double p_short = dev.flip_probability(MtjState::kParallel, h1, 1e-4);
  const double p_long = dev.flip_probability(MtjState::kParallel, h1, 1e-2);
  EXPECT_LE(p_short, p_long);
  const double p_stronger =
      dev.flip_probability(MtjState::kParallel, h2, 1e-4);
  EXPECT_GT(p_stronger, p_short);
  EXPECT_DOUBLE_EQ(dev.flip_probability(MtjState::kParallel, 0.0, 0.0), 0.0);
}

TEST(MtjDevice, WriteSuccessMonotoneInPulseWidth) {
  const MtjDevice dev(reference35());
  const double hz = dev.intra_stray_field();
  double prev = -1.0;
  for (double w : {5e-9, 10e-9, 20e-9, 40e-9, 80e-9}) {
    const double p =
        dev.write_success_probability(SwitchDirection::kApToP, 0.72, w, hz);
    EXPECT_GE(p, prev);
    prev = p;
  }
  // A pulse far beyond tw succeeds almost surely.
  EXPECT_GT(dev.write_success_probability(SwitchDirection::kApToP, 0.72,
                                          200e-9, hz),
            0.999);
  EXPECT_DOUBLE_EQ(dev.write_success_probability(SwitchDirection::kApToP,
                                                 0.72, 0.0, hz),
                   0.0);
}

TEST(MtjDevice, HalfProbabilityNearAverageSwitchingTime) {
  // The log-normal model is centered on tw: P(pulse = tw) = 0.5.
  const MtjDevice dev(reference35());
  const double hz = dev.intra_stray_field();
  const double tw = dev.switching_time(SwitchDirection::kApToP, 0.9, hz);
  EXPECT_NEAR(dev.write_success_probability(SwitchDirection::kApToP, 0.9, tw,
                                            hz),
              0.5, 1e-9);
}

TEST(MtjDevice, SampledSwitchingTimesCenterOnTw) {
  const MtjDevice dev(reference35());
  util::Rng rng(99);
  const double hz = dev.intra_stray_field();
  const double tw = dev.switching_time(SwitchDirection::kApToP, 0.9, hz);
  double log_sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    log_sum += std::log(
        dev.sample_switching_time(SwitchDirection::kApToP, 0.9, hz, rng));
  }
  // Median of the log-normal equals tw.
  EXPECT_NEAR(std::exp(log_sum / n), tw, tw * 0.02);
}

TEST(MtjDevice, SubCriticalWriteSuccessIsTiny) {
  const MtjDevice dev(reference35());
  const double p = dev.write_success_probability(SwitchDirection::kApToP,
                                                 0.3, 10e-9, 0.0);
  EXPECT_LT(p, 1e-6);
}

// Property sweep: Eq. 2 and Eq. 5 consistency across stray fields -- the
// destabilized state has both lower Delta and lower Ic for leaving it.
class StrayFieldProperty : public ::testing::TestWithParam<double> {};

TEST_P(StrayFieldProperty, DeltaAndIcMoveTogether) {
  const MtjDevice dev(reference35());
  const double hz = oe_to_a_per_m(GetParam());
  const double dp = dev.delta(MtjState::kParallel, hz);
  const double dap = dev.delta(MtjState::kAntiParallel, hz);
  const double ic_leave_p = dev.ic(SwitchDirection::kPToAp, hz);
  const double ic_leave_ap = dev.ic(SwitchDirection::kApToP, hz);
  if (hz < 0.0) {
    EXPECT_LT(dp, dap);
    EXPECT_LT(ic_leave_p, ic_leave_ap);
  } else if (hz > 0.0) {
    EXPECT_GT(dp, dap);
    EXPECT_GT(ic_leave_p, ic_leave_ap);
  }
  // Hz -> -Hz swaps the states' roles exactly.
  EXPECT_NEAR(dev.delta(MtjState::kParallel, -hz), dap, 1e-9);
  EXPECT_NEAR(dev.ic(SwitchDirection::kPToAp, -hz), ic_leave_ap, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(FieldSweep, StrayFieldProperty,
                         ::testing::Values(-400.0, -100.0, -16.0, 0.0, 64.0,
                                           200.0, 400.0));


// --- read disturb -------------------------------------------------------------

TEST(MtjDevice, ReadDisturbTargetsApState) {
  // Positive read bias drives AP->P: the AP state is the vulnerable one.
  const MtjDevice dev(reference35());
  const double hz = dev.intra_stray_field();
  const double p_ap = dev.read_disturb_probability(MtjState::kAntiParallel,
                                                   0.3, 1e-6, hz);
  const double p_p =
      dev.read_disturb_probability(MtjState::kParallel, 0.3, 1e-6, hz);
  EXPECT_GT(p_ap, p_p);
}

TEST(MtjDevice, ReadDisturbNegligibleAtPaperReadVoltage) {
  // The paper reads at 20 mV; the disturb rate there must be negligible
  // even over a 1 ms loop dwell.
  const MtjDevice dev(reference35());
  const double p = dev.read_disturb_probability(MtjState::kAntiParallel,
                                                0.02, 1e-3,
                                                dev.intra_stray_field());
  EXPECT_LT(p, 1e-9);
}

TEST(MtjDevice, ReadDisturbGrowsWithVoltageAndDuration) {
  const MtjDevice dev(reference35());
  double prev = 0.0;
  for (double v : {0.1, 0.2, 0.3, 0.4}) {
    const double p = dev.read_disturb_probability(MtjState::kAntiParallel, v,
                                                  1e-6, 0.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_GT(dev.read_disturb_probability(MtjState::kAntiParallel, 0.3, 1e-3,
                                         0.0),
            dev.read_disturb_probability(MtjState::kAntiParallel, 0.3, 1e-6,
                                         0.0));
  EXPECT_DOUBLE_EQ(dev.read_disturb_probability(MtjState::kAntiParallel, 0.3,
                                                0.0, 0.0),
                   0.0);
}


// Property sweep: Fig. 5 orderings must hold at every write voltage.
class SwitchingTimeProperty : public ::testing::TestWithParam<double> {};

TEST_P(SwitchingTimeProperty, Fig5OrderingsHold) {
  const double vp = GetParam();
  const MtjDevice dev(reference35());
  const double intra = dev.intra_stray_field();
  const double t_free = dev.switching_time(SwitchDirection::kApToP, vp, 0.0);
  const double t_intra =
      dev.switching_time(SwitchDirection::kApToP, vp, intra);
  // More negative field -> slower AP->P (paper Fig. 5 solid vs dashed).
  EXPECT_GT(t_intra, t_free);
  const double t_np0 = dev.switching_time(SwitchDirection::kApToP, vp,
                                          intra + oe_to_a_per_m(-34.0));
  const double t_np255 = dev.switching_time(SwitchDirection::kApToP, vp,
                                            intra + oe_to_a_per_m(132.0));
  EXPECT_GT(t_np0, t_intra);
  EXPECT_LT(t_np255, t_intra);
  // tw and overdrive are consistent: tw * Im is voltage-independent up to
  // the slowly varying log(Delta) factor -- check within 5 %.
  const double im = dev.overdrive(SwitchDirection::kApToP, vp, intra);
  const double im_ref = dev.overdrive(SwitchDirection::kApToP, 0.9, intra);
  const double t_ref = dev.switching_time(SwitchDirection::kApToP, 0.9, intra);
  EXPECT_NEAR(t_intra * im, t_ref * im_ref, t_ref * im_ref * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Voltages, SwitchingTimeProperty,
                         ::testing::Values(0.72, 0.8, 0.9, 1.0, 1.1, 1.2));

// Property sweep: retention/Ic/delta consistency across temperatures.
class TemperatureProperty : public ::testing::TestWithParam<double> {};

TEST_P(TemperatureProperty, ThermalScalingConsistent) {
  const double t = GetParam();
  const MtjDevice dev(reference35());
  const auto& thermal = dev.params().thermal;
  // Ic0(T) scales exactly with the Bloch factor.
  EXPECT_NEAR(dev.ic0(t), dev.ic0(300.0) * thermal.ms_scale(t),
              dev.ic0(300.0) * 1e-12);
  // Delta(T) without stray field equals Delta0 * delta0_scale.
  EXPECT_NEAR(dev.delta(MtjState::kParallel, 0.0, t),
              45.5 * thermal.delta0_scale(t), 1e-9);
  // Retention is Arrhenius in that Delta.
  EXPECT_NEAR(dev.retention_time(MtjState::kParallel, 0.0, t),
              1e-9 * std::exp(dev.delta(MtjState::kParallel, 0.0, t)),
              dev.retention_time(MtjState::kParallel, 0.0, t) * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, TemperatureProperty,
                         ::testing::Values(273.15, 300.0, 358.15, 423.15));

}  // namespace
}  // namespace mram::dev
