// Unit tests for src/util: RNG, statistics, tables, CSV, units, errors.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "util/constants.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace mram::util {
namespace {

// --- units ------------------------------------------------------------------

TEST(Units, OerstedRoundTrip) {
  EXPECT_NEAR(a_per_m_to_oe(oe_to_a_per_m(123.4)), 123.4, 1e-10);
  EXPECT_NEAR(oe_to_a_per_m(1.0), 79.5774715459, 1e-6);
}

TEST(Units, PaperConstantsInSi) {
  // Hk = 4646.8 Oe and Hc = 2.2 kOe from the paper.
  EXPECT_NEAR(oe_to_a_per_m(4646.8), 369780.6, 1.0);
  EXPECT_NEAR(oe_to_a_per_m(2200.0), 175070.4, 1.0);
}

TEST(Units, TeslaConversion) {
  const double h = oe_to_a_per_m(10000.0);  // 1 T is about 10 kOe
  EXPECT_NEAR(a_per_m_to_tesla(h), 1.0, 0.01);
  EXPECT_NEAR(tesla_to_a_per_m(a_per_m_to_tesla(12345.0)), 12345.0, 1e-6);
}

TEST(Units, LengthTimeCurrent) {
  EXPECT_DOUBLE_EQ(nm_to_m(35.0), 35e-9);
  EXPECT_DOUBLE_EQ(m_to_nm(nm_to_m(35.0)), 35.0);
  EXPECT_DOUBLE_EQ(ns_to_s(20.0), 20e-9);
  EXPECT_DOUBLE_EQ(s_to_ns(ns_to_s(20.0)), 20.0);
  EXPECT_DOUBLE_EQ(ua_to_a(57.2), 57.2e-6);
  EXPECT_DOUBLE_EQ(a_to_ua(ua_to_a(57.2)), 57.2);
}

TEST(Units, TemperatureAndRa) {
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(0.0), 273.15);
  EXPECT_DOUBLE_EQ(kelvin_to_celsius(celsius_to_kelvin(150.0)), 150.0);
  EXPECT_DOUBLE_EQ(ohm_um2_to_ohm_m2(4.5), 4.5e-12);
  EXPECT_DOUBLE_EQ(ohm_m2_to_ohm_um2(ohm_um2_to_ohm_m2(4.5)), 4.5);
}

TEST(Units, Magnetization) {
  EXPECT_DOUBLE_EQ(emu_per_cc_to_a_per_m(1000.0), 1e6);
  EXPECT_DOUBLE_EQ(emu_per_cm2_to_a(1e-4), 1e-3);
}

// --- error machinery --------------------------------------------------------

TEST(Error, ExpectsThrowsWithContext) {
  try {
    MRAM_EXPECTS(1 == 2, "one is not two");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(Error, EnsuresThrows) {
  EXPECT_THROW(MRAM_ENSURES(false, "bad"), ContractViolation);
}

TEST(Error, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(MRAM_EXPECTS(true, ""));
  EXPECT_NO_THROW(MRAM_ENSURES(true, ""));
}

// --- RNG --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng rng(14);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalScaled) {
  Rng rng(15);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, BelowIsUnbiased) {
  Rng rng(16);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, BernoulliEdgeCasesAndRate) {
  Rng rng(17);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, NormalFillStreamConsistentAcrossFillSizes) {
  // The fill keeps no hidden state between calls: one bulk fill of n values
  // is the identical stream to any split into smaller fills on an engine
  // with the same state -- the property that lets the batched LLG kernel
  // prefetch a lane's thermal history in blocks while the scalar path
  // draws three values per step, and still match it bit for bit.
  constexpr std::size_t kN = 24;
  Rng bulk_rng(101);
  std::vector<double> bulk(kN);
  bulk_rng.normal_fill(bulk.data(), kN);
  for (std::size_t piece : {1u, 2u, 3u, 5u, 8u}) {
    Rng split_rng(101);
    std::vector<double> split(kN);
    for (std::size_t at = 0; at < kN; at += piece) {
      split_rng.normal_fill(split.data() + at, std::min(piece, kN - at));
    }
    EXPECT_EQ(bulk, split) << "piece=" << piece;
    // Engines end in the same state: the next raw draw agrees too.
    EXPECT_EQ(split_rng(), Rng(bulk_rng)());
  }
}

TEST(Rng, NormalFillInterleavesWithNormal) {
  // Mixed usage: fills interleaved with legacy normal() calls leave both
  // samplers deterministic -- each mixed engine stays in lockstep with a
  // twin replaying the same call pattern.
  Rng a(77);
  Rng b(77);
  double buf_a[3], buf_b[3];
  EXPECT_EQ(a.normal(), b.normal());  // leaves a cached spare in both
  a.normal_fill(buf_a, 3);
  b.normal_fill(buf_b, 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(buf_a[i], buf_b[i]);
  EXPECT_EQ(a.normal(), b.normal());
}

TEST(Rng, NormalFillIsNotTheLegacyNormalStream) {
  // Documented split: normal() must stay the bit-stable legacy polar
  // sampler (committed goldens depend on its exact draws), while
  // normal_fill is the fast ziggurat. The two value streams differ.
  Rng a(101);
  Rng b(101);
  double filled[8];
  a.normal_fill(filled, 8);
  int same = 0;
  for (double v : filled) same += (v == b.normal());
  EXPECT_LT(same, 8);
}

TEST(Rng, NormalFillPairMatchesTwoSoloFills) {
  // The lockstep pair fill must reproduce each engine's solo normal_fill
  // stream bit for bit, including engines whose draws hit the fallback
  // paths at different times, and leave both engines in the solo state.
  Rng a(11), b(22), a_ref(11), b_ref(22);
  std::vector<double> pa(777), pb(777), ra(777), rb(777);
  Rng::normal_fill_pair(a, b, pa.data(), pb.data(), 777);
  a_ref.normal_fill(ra.data(), 777);
  b_ref.normal_fill(rb.data(), 777);
  EXPECT_EQ(pa, ra);
  EXPECT_EQ(pb, rb);
  EXPECT_EQ(a(), a_ref());
  EXPECT_EQ(b(), b_ref());
}

TEST(Rng, NormalFillZeroCountIsANoOp) {
  Rng a(5);
  Rng b(5);
  a.normal_fill(nullptr, 0);
  EXPECT_EQ(a(), b());
}

TEST(Rng, NormalFillMomentsAndTails) {
  Rng rng(19);
  RunningStats s;
  std::size_t beyond_3sigma = 0;
  std::vector<double> buf(1000);
  for (int block = 0; block < 200; ++block) {
    rng.normal_fill(buf.data(), buf.size());
    for (double v : buf) {
      s.add(v);
      beyond_3sigma += (std::abs(v) > 3.0);
    }
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
  // Tail mass: P(|X| > 3) = 2.7e-3, so ~540 of 200k. A ziggurat bug that
  // clips the tail (or doubles it) fails this comfortably.
  EXPECT_GT(beyond_3sigma, 400u);
  EXPECT_LT(beyond_3sigma, 700u);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  Rng parent(21);
  Rng child = parent.split();
  RunningStats corr;
  // Crude decorrelation check: child and parent outputs should not be equal.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child());
  EXPECT_EQ(same, 0);
}

// --- statistics -------------------------------------------------------------

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), ContractViolation);
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, VarianceOfSingleSampleIsZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, SummaryQuartiles) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 9u);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.q25, 3.0);
  EXPECT_DOUBLE_EQ(s.q75, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 10.0);
  EXPECT_THROW(quantile_sorted(xs, 1.5), ContractViolation);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_THROW(median({}), ContractViolation);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> yneg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, yneg), -1.0, 1e-12);
}

TEST(Stats, WilsonIntervalProperties) {
  const auto iv = wilson_interval(5, 100);
  EXPECT_GT(iv.lo, 0.0);
  EXPECT_LT(iv.lo, 0.05);
  EXPECT_GT(iv.hi, 0.05);
  EXPECT_LT(iv.hi, 0.15);
  // Zero successes still yields a positive upper bound.
  const auto zero = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_THROW(wilson_interval(5, 0), ContractViolation);
  EXPECT_THROW(wilson_interval(5, 4), ContractViolation);
}

TEST(Stats, ProbitRoundTripAndSymmetry) {
  // Moderate range: the Halley-refined value inverts the normal CDF to
  // near machine precision.
  for (double p : {0.001, 0.02425, 0.1, 0.5, 0.9, 0.97575, 0.999}) {
    const double x = probit(p);
    EXPECT_NEAR(0.5 * std::erfc(-x / std::sqrt(2.0)), p, 1e-14 + 1e-12 * p)
        << "p=" << p;
    // Near-antisymmetric (the two tail branches differ in the last ulps).
    EXPECT_NEAR(probit(1.0 - p), -x, 1e-13 * (1.0 + std::abs(x)))
        << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(probit(0.5), 0.0);
  EXPECT_TRUE(std::isinf(probit(0.0)));
  EXPECT_TRUE(std::isinf(probit(1.0)));
}

TEST(Stats, ProbitExtremeTailStaysFinite) {
  // Regression: the Halley refinement computes exp(x*x/2), which overflows
  // for |x| >~ 37.6 (p below ~1e-308) and used to turn the deep tail into
  // NaN. Subset-simulation level probabilities land this deep.
  for (double p : {1e-300, 1e-308, 5e-310, 1e-315, 5e-324}) {
    const double x = probit(p);
    EXPECT_TRUE(std::isfinite(x)) << "p=" << p;
    EXPECT_LT(x, -37.0) << "p=" << p;
    EXPECT_GT(x, -45.0) << "p=" << p;
  }
  // Monotonicity must survive the refined/unrefined seam near p ~ 1e-308.
  double prev = probit(1e-320);
  for (double p : {1e-315, 1e-310, 1e-308, 1e-306, 1e-300, 1e-200}) {
    const double x = probit(p);
    EXPECT_LT(prev, x) << "p=" << p;
    prev = x;
  }
}

TEST(Stats, WeightedStatsMomentsAndEffectiveSamples) {
  WeightedStats ws;
  ws.add(0.0, 0.0);  // a miss
  ws.add(1.0, 0.5);  // weighted hits
  ws.add(1.0, 0.25);
  EXPECT_EQ(ws.count(), 3u);
  EXPECT_DOUBLE_EQ(ws.mean(), 0.25);  // (0 + 0.5 + 0.25) / 3
  EXPECT_DOUBLE_EQ(ws.sum_weight(), 0.75);
  EXPECT_GT(ws.effective_samples(), 0.0);
  EXPECT_GT(ws.rel_error(), 0.0);
}

TEST(Stats, WeightedStatsRelErrorIsPositiveForNegativeMean) {
  // Regression: rel_error() used to divide by the signed mean, so a
  // negative estimate (legal for signed integrands) reported a *negative*
  // relative error -- vacuously below every `rel_err < target` stopping
  // threshold, halting estimators that had not converged at all.
  WeightedStats ws;
  ws.add(-1.0, 1.0);
  ws.add(-2.0, 1.0);
  ws.add(-4.0, 1.0);
  ASSERT_LT(ws.mean(), 0.0);
  EXPECT_GT(ws.rel_error(), 0.0);
  EXPECT_TRUE(std::isfinite(ws.rel_error()));
  // Sign-flipped samples give the identical relative error.
  WeightedStats pos;
  pos.add(1.0, 1.0);
  pos.add(2.0, 1.0);
  pos.add(4.0, 1.0);
  EXPECT_DOUBLE_EQ(ws.rel_error(), pos.rel_error());
  // Degenerate cases stay +inf, never negative.
  WeightedStats empty;
  EXPECT_TRUE(std::isinf(empty.rel_error()));
  EXPECT_GT(empty.rel_error(), 0.0);
}

// --- table ------------------------------------------------------------------

TEST(Table, AlignedTextOutput) {
  Table t({"a", "long_header"});
  t.add_row({"1", "2"});
  t.add_numeric_row({3.14159, 2.71828}, 2);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("long_header"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  // All lines share the same width.
  std::istringstream is(text);
  std::string line;
  std::set<std::size_t> widths;
  while (std::getline(is, line)) widths.insert(line.size());
  EXPECT_EQ(widths.size(), 1u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, CsvEscaping) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, PrintIncludesTitle) {
  Table t({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os, "My Title");
  EXPECT_NE(os.str().find("== My Title =="), std::string::npos);
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

// --- csv --------------------------------------------------------------------

TEST(Csv, ParsesHeaderAndRows) {
  const auto doc = parse_numeric_csv("# comment\n a , b\n1,2\n3.5,-4\n");
  ASSERT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.header[0], "a");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.rows[1][0], 3.5);
  EXPECT_DOUBLE_EQ(doc.rows[1][1], -4.0);
  EXPECT_EQ(doc.column("b"), 1u);
  EXPECT_THROW(doc.column("missing"), ConfigError);
}

TEST(Csv, RejectsMalformedInput) {
  EXPECT_THROW(parse_numeric_csv(""), ConfigError);
  EXPECT_THROW(parse_numeric_csv("a,b\n1\n"), ConfigError);
  EXPECT_THROW(parse_numeric_csv("a,b\n1,notanumber\n"), ConfigError);
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mram_csv_test.csv";
  write_text_file(path, "x,y\n1,2\n");
  const auto doc = read_numeric_csv(path);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(doc.rows[0][1], 2.0);
  EXPECT_THROW(read_numeric_csv("/nonexistent/nope.csv"), ConfigError);
}

}  // namespace
}  // namespace mram::util
