// Unit and property tests for src/magnetics: current loops (Biot--Savart vs.
// exact elliptic solution), dipole limit, disk sources, superposition solver,
// field maps.

#include <gtest/gtest.h>

#include <cmath>

#include "magnetics/current_loop.h"
#include "magnetics/cylinder.h"
#include "magnetics/dipole.h"
#include "magnetics/disk_source.h"
#include "magnetics/field_map.h"
#include "magnetics/stray_field.h"
#include "util/constants.h"
#include "util/error.h"
#include "util/units.h"

namespace mram::mag {
namespace {

using num::Vec3;
using util::ContractViolation;

constexpr double kNm = 1e-9;

CurrentLoop reference_loop() {
  // A bound-current loop representative of the paper's devices:
  // R = 27.5 nm (eCD = 55 nm), Ib = 1 mA.
  return {{0, 0, 0}, 27.5 * kNm, 1e-3};
}

// --- on-axis closed form ----------------------------------------------------

TEST(CurrentLoop, OnAxisCenterField) {
  // H(0) = I / (2R).
  const auto loop = reference_loop();
  EXPECT_NEAR(loop_field_on_axis(loop, 0.0),
              loop.current / (2.0 * loop.radius), 1e-3);
}

TEST(CurrentLoop, OnAxisMatchesExactAndBiotSavart) {
  const auto loop = reference_loop();
  for (double z : {0.0, 1.0 * kNm, 5.0 * kNm, 27.5 * kNm, 100.0 * kNm}) {
    const double analytic = loop_field_on_axis(loop, z);
    const Vec3 exact = loop_field_exact(loop, {0, 0, z});
    const Vec3 bs = loop_field_biot_savart(loop, {0, 0, z}, 720);
    EXPECT_NEAR(exact.z, analytic, std::abs(analytic) * 1e-9) << "z=" << z;
    EXPECT_NEAR(bs.z, analytic, std::abs(analytic) * 1e-4) << "z=" << z;
    EXPECT_NEAR(exact.x, 0.0, std::abs(analytic) * 1e-12);
    EXPECT_NEAR(exact.y, 0.0, std::abs(analytic) * 1e-12);
  }
}

// --- Biot--Savart discretization vs. exact ----------------------------------

TEST(CurrentLoop, BiotSavartConvergesToExact) {
  const auto loop = reference_loop();
  const Vec3 p{40.0 * kNm, 10.0 * kNm, 6.8 * kNm};  // generic off-axis point
  const Vec3 exact = loop_field_exact(loop, p);
  double prev_err = 1e300;
  for (int segments : {16, 64, 256, 1024}) {
    const Vec3 approx = loop_field_biot_savart(loop, p, segments);
    const double err = num::norm(approx - exact);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err, num::norm(exact) * 1e-5);
}

TEST(CurrentLoop, InPlaneExteriorFieldOpposesMoment) {
  // In the loop plane but outside the loop, Hz has the opposite sign of the
  // moment (field lines return).
  const auto loop = reference_loop();
  const Vec3 h = loop_field_exact(loop, {90.0 * kNm, 0.0, 0.0});
  EXPECT_LT(h.z, 0.0);
  EXPECT_NEAR(h.x, 0.0, std::abs(h.z) * 1e-9);  // radial component vanishes
}

TEST(CurrentLoop, FieldScalesLinearlyWithCurrent) {
  auto loop = reference_loop();
  const Vec3 p{10.0 * kNm, -5.0 * kNm, 3.0 * kNm};
  const Vec3 h1 = loop_field_exact(loop, p);
  loop.current *= -2.5;
  const Vec3 h2 = loop_field_exact(loop, p);
  EXPECT_TRUE(num::almost_equal(h2, -2.5 * h1, num::norm(h1) * 1e-12));
}

TEST(CurrentLoop, MirrorSymmetryInZ) {
  const auto loop = reference_loop();
  const Vec3 p{12.0 * kNm, 7.0 * kNm, 9.0 * kNm};
  const Vec3 up = loop_field_exact(loop, p);
  const Vec3 down = loop_field_exact(loop, {p.x, p.y, -p.z});
  // Hz is even in z; the in-plane components are odd.
  EXPECT_NEAR(up.z, down.z, std::abs(up.z) * 1e-10);
  EXPECT_NEAR(up.x, -down.x, std::abs(up.x) * 1e-10);
  EXPECT_NEAR(up.y, -down.y, std::abs(up.y) * 1e-10);
}

TEST(CurrentLoop, RotationalSymmetry) {
  const auto loop = reference_loop();
  const double rho = 33.0 * kNm;
  const double z = 4.0 * kNm;
  const Vec3 a = loop_field_exact(loop, {rho, 0.0, z});
  const double c = std::cos(1.1), s = std::sin(1.1);
  const Vec3 b = loop_field_exact(loop, {rho * c, rho * s, z});
  EXPECT_NEAR(b.z, a.z, std::abs(a.z) * 1e-10);
  // The radial magnitude is invariant.
  const double ra = std::hypot(a.x, a.y);
  const double rb = std::hypot(b.x, b.y);
  EXPECT_NEAR(ra, rb, std::max(ra, 1e-12) * 1e-9);
}

TEST(CurrentLoop, MomentAndPreconditions) {
  const auto loop = reference_loop();
  EXPECT_NEAR(loop_moment(loop),
              loop.current * util::kPi * loop.radius * loop.radius, 1e-30);
  EXPECT_THROW(loop_field_biot_savart(loop, {0, 0, 0}, 2), ContractViolation);
  EXPECT_THROW(
      loop_field_exact(CurrentLoop{{0, 0, 0}, -1.0, 1.0}, {0, 0, 1e-9}),
      ContractViolation);
  // A point exactly on the wire is rejected.
  EXPECT_THROW(loop_field_exact(loop, {loop.radius, 0.0, 0.0}),
               ContractViolation);
}

// --- dipole limit (property sweep over distance) ----------------------------

class DipoleLimit : public ::testing::TestWithParam<double> {};

TEST_P(DipoleLimit, LoopApproachesDipoleFarAway) {
  const auto loop = reference_loop();
  const double distance = GetParam() * loop.radius;
  const Vec3 m{0.0, 0.0, loop_moment(loop)};
  // Probe several directions at this distance.
  for (const Vec3 dir : {Vec3{1, 0, 0}, Vec3{0, 0, 1}, Vec3{0.6, 0.0, 0.8},
                         Vec3{0.36, 0.48, 0.8}}) {
    const Vec3 p = distance * dir;
    const Vec3 exact = loop_field_exact(loop, p);
    const Vec3 dip = dipole_field(m, p);
    const double tol = num::norm(dip) * 6.0 / (GetParam() * GetParam());
    EXPECT_TRUE(num::almost_equal(exact, dip, tol))
        << "distance = " << GetParam() << " R, dir = (" << dir.x << ","
        << dir.y << "," << dir.z << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, DipoleLimit,
                         ::testing::Values(5.0, 10.0, 20.0, 50.0));

TEST(Dipole, OnAxisAndEquatorialValues) {
  const Vec3 m{0.0, 0.0, 1e-18};
  const double r = 50.0 * kNm;
  // On axis: H = 2m/(4 pi r^3); equatorial: H = -m/(4 pi r^3).
  const double unit = num::norm(m) / (4.0 * util::kPi * r * r * r);
  EXPECT_NEAR(dipole_field(m, {0, 0, r}).z, 2.0 * unit, 2.0 * unit * 1e-12);
  EXPECT_NEAR(dipole_field(m, {r, 0, 0}).z, -unit, unit * 1e-12);
  EXPECT_THROW(dipole_field(m, {0, 0, 0}), ContractViolation);
}

// --- disk sources -----------------------------------------------------------

TEST(DiskSource, SingleSubLoopEqualsLoop) {
  DiskSource disk;
  disk.center = {0, 0, 0};
  disk.radius = 17.5 * kNm;
  disk.thickness = 0.0;
  disk.ms_t = 2e-3;
  disk.polarity = +1;
  const auto loops = disk_loops(disk);
  ASSERT_EQ(loops.size(), 1u);
  const Vec3 p{30.0 * kNm, 0.0, 5.0 * kNm};
  EXPECT_TRUE(num::almost_equal(disk_field(disk, p),
                                loop_field_exact(loops[0], p), 1e-6));
}

TEST(DiskSource, SubLoopCurrentsSumToMsT) {
  DiskSource disk;
  disk.radius = 10.0 * kNm;
  disk.thickness = 5.0 * kNm;
  disk.ms_t = 3e-3;
  disk.polarity = -1;
  disk.sub_loops = 7;
  const auto loops = disk_loops(disk);
  ASSERT_EQ(loops.size(), 7u);
  double total = 0.0;
  for (const auto& l : loops) total += l.current;
  EXPECT_NEAR(total, -3e-3, 1e-15);
  // Sub-loops span the thickness symmetrically.
  EXPECT_NEAR(loops.front().center.z, -disk.thickness / 2.0 +
                  disk.thickness / 14.0, 1e-18);
  EXPECT_NEAR(loops.back().center.z,
              disk.thickness / 2.0 - disk.thickness / 14.0, 1e-18);
}

TEST(DiskSource, ThicknessDiscretizationConverges) {
  DiskSource disk;
  disk.radius = 17.5 * kNm;
  disk.thickness = 6.0 * kNm;
  disk.ms_t = 2e-3;
  const Vec3 p{0.0, 0.0, 6.8 * kNm};

  DiskSource fine = disk;
  fine.sub_loops = 64;
  const double reference = disk_field(fine, p).z;

  double prev_err = 1e300;
  for (int n : {1, 2, 4, 8, 16}) {
    DiskSource d = disk;
    d.sub_loops = n;
    const double err = std::abs(disk_field(d, p).z - reference);
    EXPECT_LE(err, prev_err * 1.01);
    prev_err = err;
  }
  EXPECT_LT(prev_err, std::abs(reference) * 1e-3);
}

TEST(DiskSource, DipoleMethodUsesTotalMoment) {
  DiskSource disk;
  disk.radius = 17.5 * kNm;
  disk.thickness = 2.0 * kNm;
  disk.ms_t = 2e-3;
  disk.polarity = -1;
  const Vec3 p{300.0 * kNm, 0.0, 0.0};
  const Vec3 h = disk_field(disk, p, FieldMethod::kDipole);
  const Vec3 expected = dipole_field({0, 0, disk_moment(disk)}, p);
  EXPECT_TRUE(num::almost_equal(h, expected, 1e-9));
  EXPECT_LT(disk_moment(disk), 0.0);
}

TEST(DiskSource, Validation) {
  DiskSource bad;
  bad.radius = -1.0;
  bad.ms_t = 1e-3;
  EXPECT_THROW(disk_loops(bad), ContractViolation);
  bad.radius = 1e-8;
  bad.polarity = 2;
  EXPECT_THROW(disk_loops(bad), ContractViolation);
  bad.polarity = 1;
  bad.sub_loops = 0;
  EXPECT_THROW(disk_loops(bad), ContractViolation);
}

// --- superposition solver ---------------------------------------------------

TEST(StrayFieldSolver, SuperposesTwoSources) {
  StrayFieldSolver solver;
  DiskSource a;
  a.radius = 10 * kNm;
  a.ms_t = 1e-3;
  DiskSource b = a;
  b.center = {50 * kNm, 0, 0};
  b.polarity = -1;
  solver.add_source("A", a);
  solver.add_source("B", b);

  const Vec3 p{20 * kNm, 5 * kNm, 3 * kNm};
  const Vec3 total = solver.field_at(p);
  const Vec3 fa = disk_field(a, p);
  const Vec3 fb = disk_field(b, p);
  EXPECT_TRUE(num::almost_equal(total, fa + fb, 1e-9));
  EXPECT_TRUE(num::almost_equal(solver.source_field_at(0, p), fa, 1e-12));
  EXPECT_TRUE(num::almost_equal(solver.named_field_at("B", p), fb, 1e-12));
  EXPECT_EQ(num::norm(solver.named_field_at("missing", p)), 0.0);
}

TEST(StrayFieldSolver, MethodSelection) {
  StrayFieldSolver solver;
  DiskSource d;
  d.radius = 15 * kNm;
  d.ms_t = 1.5e-3;
  solver.add_source("d", d);
  const Vec3 p{40 * kNm, 0, 4 * kNm};

  solver.set_method(FieldMethod::kExact);
  const Vec3 exact = solver.field_at(p);
  solver.set_method(FieldMethod::kBiotSavart);
  solver.set_segments(2048);
  const Vec3 bs = solver.field_at(p);
  EXPECT_TRUE(num::almost_equal(exact, bs, num::norm(exact) * 1e-4));
  EXPECT_THROW(solver.set_segments(2), ContractViolation);
  EXPECT_THROW(solver.source(5), ContractViolation);
}

// --- field maps -------------------------------------------------------------

TEST(FieldMap, LineSampleIsSymmetric) {
  StrayFieldSolver solver;
  DiskSource d;
  d.radius = 17.5 * kNm;
  d.ms_t = 2e-3;
  solver.add_source("d", d);
  const auto samples = sample_line_x(solver, 2.8 * kNm, 15 * kNm, 31);
  ASSERT_EQ(samples.size(), 31u);
  // Hz is symmetric about x = 0 for a centered source.
  for (std::size_t i = 0; i < samples.size() / 2; ++i) {
    EXPECT_NEAR(samples[i].field.z,
                samples[samples.size() - 1 - i].field.z,
                std::abs(samples[i].field.z) * 1e-9);
  }
}

TEST(FieldMap, GridHasExpectedShape) {
  StrayFieldSolver solver;
  DiskSource d;
  d.radius = 10 * kNm;
  d.ms_t = 1e-3;
  solver.add_source("d", d);
  const auto grid = sample_grid(solver, {-40 * kNm, -40 * kNm, 2 * kNm},
                                {40 * kNm, 40 * kNm, 10 * kNm}, 5);
  EXPECT_EQ(grid.size(), 125u);
  EXPECT_DOUBLE_EQ(grid.front().position.x, -40 * kNm);
  EXPECT_DOUBLE_EQ(grid.back().position.z, 10 * kNm);
}

TEST(FieldMap, DiskAverageBelowCenterValueAboveLoopPlane) {
  // Directly above a loop, Hz peaks on the axis; the FL-area average is
  // smaller in magnitude (paper Fig. 3d: smaller at the edge).
  StrayFieldSolver solver;
  DiskSource d;
  d.radius = 17.5 * kNm;
  d.ms_t = 2e-3;
  d.center = {0, 0, -5.2 * kNm};
  solver.add_source("d", d);
  const double center = solver.field_at({0, 0, 0}).z;
  const double average = average_hz_over_disk(solver, 17.5 * kNm, 0.0);
  EXPECT_GT(center, 0.0);
  EXPECT_LT(average, center);
  EXPECT_GT(average, 0.0);
}


// --- exact cylinder (Derby-Olbert) -------------------------------------------

TEST(Cylinder, MatchesOnAxisSolenoidFormula) {
  DiskSource d;
  d.radius = 10 * kNm;
  d.thickness = 20 * kNm;
  d.ms_t = 1e-3;
  const double m_s = d.ms_t / d.thickness;
  const double a = d.radius, b = 0.5 * d.thickness;
  for (double z : {15 * kNm, 30 * kNm, 100 * kNm}) {
    const double zp = z + b, zm = z - b;
    const double expected = 0.5 * m_s * (zp / std::hypot(zp, a) -
                                         zm / std::hypot(zm, a));
    EXPECT_NEAR(cylinder_field_exact(d, {0, 0, z}).z, expected,
                std::abs(expected) * 1e-10)
        << "z=" << z;
  }
}

TEST(Cylinder, StackedLoopsConvergeToExact) {
  DiskSource d;
  d.radius = 17.5 * kNm;
  d.thickness = 2.4 * kNm;
  d.ms_t = 1.7648e-3;
  d.polarity = -1;
  d.center = {0, 0, -5.2 * kNm};
  for (const Vec3 p : {Vec3{0, 0, 0}, Vec3{30 * kNm, 10 * kNm, 0},
                       Vec3{70 * kNm, 0, 0}, Vec3{5 * kNm, -3 * kNm, 4 * kNm}}) {
    const Vec3 exact = cylinder_field_exact(d, p);
    double prev_err = 1e300;
    for (int n : {1, 4, 16, 64}) {
      DiskSource approx = d;
      approx.sub_loops = n;
      const double err = num::norm(disk_field(approx, p) - exact);
      EXPECT_LE(err, prev_err * 1.001);
      prev_err = err;
    }
    EXPECT_LT(prev_err, num::norm(exact) * 1e-3);
  }
}

TEST(Cylinder, RadialComponentMatchesLoops) {
  // Regression for the in-plane component (a pure-z bug would still pass
  // the on-axis tests).
  DiskSource d;
  d.radius = 17.5 * kNm;
  d.thickness = 2.4 * kNm;
  d.ms_t = 1.7648e-3;
  d.polarity = -1;
  d.center = {0, 0, -5.2 * kNm};
  DiskSource fine = d;
  fine.sub_loops = 200;
  const Vec3 p{30 * kNm, 10 * kNm, 0};
  const Vec3 exact = cylinder_field_exact(d, p);
  const Vec3 loops = disk_field(fine, p);
  EXPECT_NEAR(exact.x, loops.x, std::abs(loops.x) * 1e-3);
  EXPECT_NEAR(exact.y, loops.y, std::abs(loops.y) * 1e-3);
  EXPECT_LT(exact.x, -100.0);  // nonzero radial field at this probe
}

TEST(Cylinder, PolarityFlipsField) {
  DiskSource d;
  d.radius = 10 * kNm;
  d.thickness = 4 * kNm;
  d.ms_t = 2e-3;
  const Vec3 p{25 * kNm, 0, 8 * kNm};
  const Vec3 up = cylinder_field_exact(d, p);
  d.polarity = -1;
  const Vec3 down = cylinder_field_exact(d, p);
  EXPECT_TRUE(num::almost_equal(up, -down, num::norm(up) * 1e-12));
}

TEST(Cylinder, Preconditions) {
  DiskSource d;
  d.radius = 10 * kNm;
  d.thickness = 0.0;
  d.ms_t = 1e-3;
  EXPECT_THROW(cylinder_field_exact(d, {0, 0, 5 * kNm}), ContractViolation);
  d.thickness = 4 * kNm;
  // Point on the edge ring is rejected.
  EXPECT_THROW(cylinder_field_exact(d, {10 * kNm, 0, 2 * kNm}),
               ContractViolation);
}


// Property sweep: superposition and linearity of the stray-field solver
// across source counts.
class SuperpositionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SuperpositionProperty, FieldIsSumOfSources) {
  const int n = GetParam();
  StrayFieldSolver solver;
  std::vector<DiskSource> sources;
  for (int i = 0; i < n; ++i) {
    DiskSource d;
    d.radius = (10.0 + 2.0 * i) * kNm;
    d.thickness = 2.0 * kNm;
    d.ms_t = (0.5 + 0.3 * i) * 1e-3;
    d.polarity = (i % 2 == 0) ? +1 : -1;
    d.center = {i * 60.0 * kNm, -i * 25.0 * kNm, -5.0 * kNm};
    sources.push_back(d);
    solver.add_source("s" + std::to_string(i), d);
  }
  const Vec3 p{13.0 * kNm, 7.0 * kNm, 2.0 * kNm};
  Vec3 sum{};
  for (const auto& d : sources) sum += disk_field(d, p);
  const Vec3 total = solver.field_at(p);
  EXPECT_TRUE(num::almost_equal(total, sum, num::norm(sum) * 1e-12 + 1e-15));
  // Doubling every Ms*t doubles the field (linearity).
  StrayFieldSolver doubled;
  for (auto d : sources) {
    d.ms_t *= 2.0;
    doubled.add_source("d", d);
  }
  EXPECT_TRUE(num::almost_equal(doubled.field_at(p), 2.0 * total,
                                num::norm(total) * 1e-12 + 1e-15));
}

INSTANTIATE_TEST_SUITE_P(SourceCounts, SuperpositionProperty,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace mram::mag
