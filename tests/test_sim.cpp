// Tests for src/sim: process-variation sampling and ensemble
// characterization.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/ensemble.h"
#include "sim/variation.h"
#include "sim/yield.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/units.h"

namespace mram::sim {
namespace {

using dev::MtjParams;

TEST(Variation, ValidationRejectsHugeSigmas) {
  VariationModel v;
  v.sigma_ecd_rel = 0.9;
  EXPECT_THROW(v.validate(), util::ConfigError);
  v = VariationModel{};
  v.sigma_hk_rel = -0.1;
  EXPECT_THROW(v.validate(), util::ConfigError);
  EXPECT_NO_THROW(VariationModel{}.validate());
}

TEST(Variation, SamplesCenterOnNominal) {
  const auto nominal = MtjParams::reference_device(35e-9);
  VariationModel v;
  util::Rng rng(42);
  util::RunningStats ecd, hk, delta0;
  for (int i = 0; i < 4000; ++i) {
    const auto s = v.sample(nominal, rng);
    ecd.add(s.stack.ecd);
    hk.add(s.hk);
    delta0.add(s.delta0);
  }
  EXPECT_NEAR(ecd.mean(), nominal.stack.ecd, nominal.stack.ecd * 0.01);
  EXPECT_NEAR(ecd.stddev() / ecd.mean(), v.sigma_ecd_rel, 0.01);
  EXPECT_NEAR(hk.mean(), nominal.hk, nominal.hk * 0.01);
  EXPECT_NEAR(hk.stddev() / hk.mean(), v.sigma_hk_rel, 0.015);
  // Delta0 inherits the eCD variation (2 sigma_ecd) plus its own spread.
  const double expected_delta_sigma = std::sqrt(
      std::pow(2.0 * v.sigma_ecd_rel, 2.0) + std::pow(v.sigma_delta0_rel, 2.0));
  EXPECT_NEAR(delta0.stddev() / delta0.mean(), expected_delta_sigma, 0.02);
}

TEST(Variation, SampledDevicesAreValid) {
  const auto nominal = MtjParams::reference_device(35e-9);
  VariationModel v;
  util::Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NO_THROW(v.sample(nominal, rng).validate());
  }
}

TEST(Variation, DeterministicGivenSeed) {
  const auto nominal = MtjParams::reference_device(35e-9);
  VariationModel v;
  util::Rng a(7), b(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(v.sample(nominal, a).stack.ecd,
                     v.sample(nominal, b).stack.ecd);
  }
}

TEST(Variation, ZeroSigmaReproducesNominal) {
  const auto nominal = MtjParams::reference_device(35e-9);
  VariationModel v;
  v.sigma_ecd_rel = v.sigma_hk_rel = v.sigma_ms_t_rel = v.sigma_tmr_rel =
      v.sigma_delta0_rel = 0.0;
  util::Rng rng(44);
  const auto s = v.sample(nominal, rng);
  EXPECT_DOUBLE_EQ(s.stack.ecd, nominal.stack.ecd);
  EXPECT_DOUBLE_EQ(s.hk, nominal.hk);
  EXPECT_DOUBLE_EQ(s.delta0, nominal.delta0);
}

TEST(Ensemble, Fig2bShape) {
  // The ensemble reproduces the Fig. 2b structure: |Hs_intra| grows as the
  // size shrinks, with nonzero device-to-device spread.
  const auto nominal = MtjParams::reference_device(35e-9);
  EnsembleConfig cfg;
  cfg.devices_per_size = 12;
  const std::vector<double> ecds{35e-9, 55e-9, 90e-9, 175e-9};
  const auto rows = characterize_sizes(nominal, ecds, cfg);
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(std::abs(rows[i].hs_intra.mean),
              std::abs(rows[i - 1].hs_intra.mean));
  }
  for (const auto& r : rows) {
    EXPECT_LT(r.hs_intra.mean, 0.0);
    EXPECT_GT(r.hs_intra.stddev, 0.0);
    // The electrically recovered eCD tracks the nominal size.
    EXPECT_NEAR(r.ecd_measured.mean, r.ecd_nominal, r.ecd_nominal * 0.05);
  }
}

TEST(Ensemble, DeterministicBySeed) {
  const auto nominal = MtjParams::reference_device(35e-9);
  EnsembleConfig cfg;
  cfg.devices_per_size = 5;
  const std::vector<double> ecds{55e-9};
  const auto a = characterize_sizes(nominal, ecds, cfg);
  const auto b = characterize_sizes(nominal, ecds, cfg);
  EXPECT_DOUBLE_EQ(a[0].hs_intra.mean, b[0].hs_intra.mean);
}


// --- yield ---------------------------------------------------------------------

TEST(Yield, SpecValidation) {
  YieldSpec spec;
  spec.min_delta = -1.0;
  EXPECT_THROW(spec.validate(), util::ConfigError);
  spec = YieldSpec{};
  spec.max_switching_time = 0.0;
  EXPECT_THROW(spec.validate(), util::ConfigError);
  EXPECT_NO_THROW(YieldSpec{}.validate());
}

TEST(Yield, NominalDevicePassesDefaultSpec) {
  // Zero variation: every "sample" is the nominal device, which meets the
  // default spec at 2x eCD.
  const auto nominal = MtjParams::reference_device(35e-9);
  VariationModel none;
  none.sigma_ecd_rel = none.sigma_hk_rel = none.sigma_ms_t_rel =
      none.sigma_tmr_rel = none.sigma_delta0_rel = 0.0;
  util::Rng rng(50);
  const auto result =
      estimate_yield(nominal, none, 2.0 * 35e-9, YieldSpec{}, 10, rng);
  EXPECT_EQ(result.pass_both, 10u);
  EXPECT_DOUBLE_EQ(result.yield, 1.0);
}

TEST(Yield, TightSpecFailsEveryone) {
  const auto nominal = MtjParams::reference_device(35e-9);
  VariationModel v;
  util::Rng rng(51);
  YieldSpec spec;
  spec.min_delta = 1000.0;  // unreachable
  const auto result = estimate_yield(nominal, v, 2.0 * 35e-9, spec, 20, rng);
  EXPECT_EQ(result.pass_retention, 0u);
  EXPECT_DOUBLE_EQ(result.yield, 0.0);
}

TEST(Yield, CouplingPenaltyAtAggressivePitch) {
  // With variation, the worst-case coupling at 1.5x eCD costs yield
  // relative to 3x eCD.
  const auto nominal = MtjParams::reference_device(35e-9);
  VariationModel v;
  util::Rng rng(52);
  const auto points = yield_vs_pitch(nominal, v,
                                     {1.5 * 35e-9, 3.0 * 35e-9}, YieldSpec{},
                                     800, rng);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_LT(points[0].result.yield, points[1].result.yield);
}

}  // namespace
}  // namespace mram::sim
