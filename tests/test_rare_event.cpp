// Tests for the rare-event acceleration stack: the weighted accumulator and
// probit primitives, the tilted RNG hooks, the tilted stochastic-LLG kernels
// (scalar vs batched bitwise parity, likelihood-ratio bookkeeping), the
// generic importance-sampling / subset-simulation drivers, and the workload
// wirings (WER, retention, RER, read disturb) -- including the acceptance
// contract: overlap-regime agreement with brute force and bit identity
// across thread counts and scalar/batched paths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "device/mtj_device.h"
#include "dynamics/llg.h"
#include "dynamics/llg_batch.h"
#include "dynamics/switching_sim.h"
#include "engine/monte_carlo.h"
#include "engine/rare_event.h"
#include "mram/retention.h"
#include "mram/wer.h"
#include "readout/read_error.h"
#include "readout/rer.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mram {
namespace {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// --- util::WeightedStats ----------------------------------------------------

TEST(WeightedStats, MergeInChunkOrderMatchesSerial) {
  // Chunk accumulators merged in chunk order reproduce serial accumulation
  // (up to fp regrouping) for any chunking; counts are exact. Bitwise
  // thread-count invariance comes from the engine fixing the chunk
  // decomposition -- covered by the engine and workload determinism tests.
  util::Rng rng(7);
  std::vector<double> values(257), weights(257);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = rng.uniform() < 0.3 ? 1.0 : 0.0;
    weights[i] = std::exp(rng.normal());
  }

  util::WeightedStats serial;
  for (std::size_t i = 0; i < values.size(); ++i) {
    serial.add(values[i], weights[i]);
  }

  for (std::size_t chunk : {std::size_t{1}, std::size_t{16}, std::size_t{100},
                            std::size_t{257}}) {
    util::WeightedStats merged;
    for (std::size_t start = 0; start < values.size(); start += chunk) {
      util::WeightedStats part;
      const std::size_t stop = std::min(start + chunk, values.size());
      for (std::size_t i = start; i < stop; ++i) {
        part.add(values[i], weights[i]);
      }
      merged.merge(part);
    }
    EXPECT_EQ(merged.count(), serial.count()) << "chunk " << chunk;
    EXPECT_NEAR(merged.mean(), serial.mean(), 1e-12) << "chunk " << chunk;
    EXPECT_NEAR(merged.variance(), serial.variance(), 1e-9)
        << "chunk " << chunk;
    EXPECT_NEAR(merged.sum_weight(), serial.sum_weight(), 1e-9)
        << "chunk " << chunk;
    EXPECT_NEAR(merged.effective_samples(), serial.effective_samples(), 1e-9)
        << "chunk " << chunk;
  }
}

TEST(WeightedStats, AllZeroWeightsHaveZeroEssAndInfiniteRelError) {
  util::WeightedStats ws;
  for (int i = 0; i < 10; ++i) ws.add(0.0, 0.0);
  EXPECT_EQ(ws.count(), 10u);
  EXPECT_EQ(ws.effective_samples(), 0.0);
  EXPECT_EQ(ws.mean(), 0.0);
  EXPECT_TRUE(std::isinf(ws.rel_error()));
}

TEST(WeightedStats, SingleTrialHasNoSpreadEstimate) {
  util::WeightedStats ws;
  ws.add(1.0, 2.0);
  EXPECT_EQ(ws.count(), 1u);
  EXPECT_EQ(ws.mean(), 2.0);
  EXPECT_EQ(ws.variance(), 0.0);
  EXPECT_EQ(ws.std_error(), 0.0);
  EXPECT_TRUE(std::isinf(ws.rel_error()));  // one sample: quality unknown
  EXPECT_EQ(ws.effective_samples(), 1.0);   // (sum w)^2 / sum w^2
}

TEST(WeightedStats, UnitWeightsReduceToBinomialCounting) {
  util::WeightedStats ws;
  for (int i = 0; i < 60; ++i) ws.add(i < 15 ? 1.0 : 0.0, i < 15 ? 1.0 : 0.0);
  EXPECT_DOUBLE_EQ(ws.mean(), 0.25);
  EXPECT_DOUBLE_EQ(ws.effective_samples(), 15.0);
}

// --- util::probit -----------------------------------------------------------

TEST(Probit, RoundTripsThroughTheNormalCdf) {
  for (double x : {-5.0, -2.0, -0.5, 0.0, 0.5, 2.0, 5.0}) {
    EXPECT_NEAR(util::probit(normal_cdf(x)), x, 1e-9) << x;
  }
  // Deep tails: the roundtrip degrades gracefully, not catastrophically.
  EXPECT_NEAR(util::probit(normal_cdf(-8.0)), -8.0, 1e-2);
  EXPECT_NEAR(util::probit(normal_cdf(8.0)), 8.0, 1e-2);
  EXPECT_EQ(util::probit(0.5), 0.0);
}

TEST(Probit, EndpointsAndMonotonicity) {
  EXPECT_TRUE(std::isinf(util::probit(0.0)));
  EXPECT_LT(util::probit(0.0), 0.0);
  EXPECT_TRUE(std::isinf(util::probit(1.0)));
  EXPECT_GT(util::probit(1.0), 0.0);
  double prev = -std::numeric_limits<double>::infinity();
  for (double p = 1e-12; p < 1.0; p *= 10.0) {
    const double b = util::probit(p);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

// --- tilted RNG hooks -------------------------------------------------------

TEST(RngTilt, ZeroTiltReproducesNormalFillBitwise) {
  util::Rng a(99), b(99);
  double plain[31], tilted[31];
  const double zero[3] = {0.0, 0.0, 0.0};
  a.normal_fill(plain, 31);
  b.normal_fill_tilted(tilted, 31, zero, 3);
  for (std::size_t i = 0; i < 31; ++i) EXPECT_EQ(plain[i], tilted[i]) << i;
  // And the generators stay in lockstep afterwards.
  EXPECT_EQ(a(), b());
}

TEST(RngTilt, TiltAddsExactlyOntoTheSameRawDeviates) {
  util::Rng a(123), b(123);
  double plain[30], tilted[30];
  const double tilt[3] = {0.25, -1.5, 4.0};
  a.normal_fill(plain, 30);
  b.normal_fill_tilted(tilted, 30, tilt, 3);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(tilted[i], plain[i] + tilt[i % 3]) << i;  // exact fp add
  }
}

// --- tilted stochastic-LLG kernels ------------------------------------------

dyn::LlgParams disturb_llg() {
  // A thermally active device under a destabilizing read current: the
  // bridge used by measure_read_disturb, at parameters where trajectories
  // are cheap (few thousand Heun steps).
  auto params = dev::MtjParams::reference_device(35e-9);
  params.delta0 = 14.0;
  const dev::MtjDevice device(params);
  return dyn::llg_from_device(device, dev::SwitchDirection::kApToP, 0.35,
                              device.intra_stray_field(), 300.0);
}

TEST(TiltedLlg, ZeroTiltLeavesWeightZeroAndPathUnchanged) {
  const dyn::MacrospinSim sim(disturb_llg());
  const num::Vec3 m0 = num::normalized({0.05, 0.02, 1.0});
  util::Rng a(5), b(5);
  const auto plain = sim.run_until_switch(m0, 3e-9, 2e-12, a, 0.0);
  const auto tilted = sim.run_until_switch(m0, 3e-9, 2e-12, b, 0.0, {});
  EXPECT_EQ(plain.switched, tilted.switched);
  EXPECT_EQ(plain.time, tilted.time);
  EXPECT_EQ(tilted.log_weight, 0.0);  // exactly, by construction
}

TEST(TiltedLlg, BatchedMatchesScalarBitwiseUnderTilt) {
  const auto llg = disturb_llg();
  const dyn::MacrospinSim scalar(llg);
  dyn::BatchMacrospinSim batch(llg);
  // Stored AP sits at -z and the read current drives toward +z; the tilt
  // pushes the thermal field the same way, toward the mz = 0 crossing.
  const num::Vec3 tilt{0.0, 0.0, 3.0};

  // Odd lane count (remainder masking included); starting heights straddle
  // the barrier so the window produces both crossers and survivors.
  constexpr std::size_t kLanes = 5;
  const double heights[kLanes] = {-1.0, -0.15, -0.9, -0.1, -0.2};
  std::vector<num::Vec3> m0(kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    m0[l] = num::normalized({0.03 + 0.01 * static_cast<double>(l), -0.02,
                             heights[l]});
  }

  std::vector<dyn::SwitchResult> expected(kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    util::Rng rng = util::Rng::stream(77, l);
    expected[l] = scalar.run_until_switch(m0[l], 8e-10, 2e-12, rng, 0.0, tilt);
  }

  std::vector<util::Rng> rngs;
  for (std::size_t l = 0; l < kLanes; ++l) {
    rngs.push_back(util::Rng::stream(77, l));
  }
  std::vector<dyn::SwitchResult> got(kLanes);
  batch.run_until_switch(kLanes, m0.data(), rngs.data(), 8e-10, 2e-12,
                         got.data(), 0.0, tilt);

  bool any_switched = false, any_survived = false;
  for (std::size_t l = 0; l < kLanes; ++l) {
    EXPECT_EQ(got[l].switched, expected[l].switched) << "lane " << l;
    EXPECT_EQ(got[l].time, expected[l].time) << "lane " << l;
    EXPECT_EQ(got[l].log_weight, expected[l].log_weight) << "lane " << l;
    EXPECT_EQ(got[l].m_end.x, expected[l].m_end.x) << "lane " << l;
    EXPECT_EQ(got[l].m_end.y, expected[l].m_end.y) << "lane " << l;
    EXPECT_EQ(got[l].m_end.z, expected[l].m_end.z) << "lane " << l;
    EXPECT_NE(expected[l].log_weight, 0.0) << "lane " << l;  // tilt was paid
    any_switched |= got[l].switched;
    any_survived |= !got[l].switched;
  }
  // The window is chosen so the test exercises both outcomes.
  EXPECT_TRUE(any_switched);
  EXPECT_TRUE(any_survived);
}

TEST(TiltedLlg, PerLaneDurationsMatchScalarContinuations) {
  // The splitting driver restarts survivors mid-window: lane l resumes at
  // its own remaining budget. The per-lane-durations overload must replay
  // the scalar integrator for each lane's own window.
  const auto llg = disturb_llg();
  const dyn::MacrospinSim scalar(llg);
  dyn::BatchMacrospinSim batch(llg);

  constexpr std::size_t kLanes = 3;
  const num::Vec3 m0[kLanes] = {num::normalized({0.30, 0.10, 0.90}),
                                num::normalized({0.25, -0.20, 0.85}),
                                num::normalized({0.05, 0.02, 1.00})};
  const double durations[kLanes] = {2.5e-9, 1.0e-9, 4.0e-9};

  dyn::SwitchResult expected[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    util::Rng rng = util::Rng::stream(31, l);
    expected[l] =
        scalar.run_until_switch(m0[l], durations[l], 2e-12, rng, 0.5);
  }

  util::Rng rngs[kLanes] = {util::Rng::stream(31, 0), util::Rng::stream(31, 1),
                            util::Rng::stream(31, 2)};
  dyn::SwitchResult got[kLanes];
  batch.run_until_switch(kLanes, m0, rngs, durations, 2e-12, got, 0.5);

  for (std::size_t l = 0; l < kLanes; ++l) {
    EXPECT_EQ(got[l].switched, expected[l].switched) << "lane " << l;
    EXPECT_EQ(got[l].time, expected[l].time) << "lane " << l;
    EXPECT_EQ(got[l].m_end.z, expected[l].m_end.z) << "lane " << l;
  }
}

// --- generic drivers --------------------------------------------------------

TEST(RareEvent, ConfigValidation) {
  eng::RareEventConfig cfg;
  cfg.level_p0 = 1.5;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg = {};
  cfg.max_rounds = 0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg = {};
  cfg.target_rel_error = 0.0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
}

TEST(RareEvent, BruteEquivalentTrialsFormula) {
  // 1e-4 at 10% relative error needs ~(1-p)/(p re^2) ~ 1e6 brute trials.
  EXPECT_NEAR(eng::brute_equivalent_trials(1e-4, 0.1, 0.0), 0.9999e6, 1e2);
  // Degenerate inputs fall back.
  EXPECT_EQ(eng::brute_equivalent_trials(0.0, 0.1, 123.0), 123.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(eng::brute_equivalent_trials(1e-4, inf, 5.0), 5.0);
}

TEST(RareEvent, ImportanceRoundsEstimatesATiltedGaussianTail) {
  // P(z > beta) with draws tilted to the boundary: the canonical analytic
  // check of the weighted estimator and its stopping rule.
  eng::MonteCarloRunner runner;
  const double beta = 4.0;
  const double p_true = normal_cdf(-beta);
  eng::RareEventConfig cfg;
  cfg.method = eng::RareEventMethod::kImportanceSampling;
  const double tilt[1] = {beta};
  const auto est = eng::importance_rounds(
      runner, 2000, 11, cfg,
      [&](util::Rng& rng, std::size_t, util::WeightedStats& ws) {
        double z[1];
        rng.normal_fill_tilted(z, 1, tilt, 1);
        if (z[0] > beta) {
          ws.add(1.0, std::exp(0.5 * beta * beta - beta * z[0]));
        } else {
          ws.add(0.0, 0.0);
        }
      });
  EXPECT_LE(est.rel_error, cfg.target_rel_error);
  EXPECT_NEAR(est.probability, p_true, 3.0 * est.rel_error * p_true);
  EXPECT_GE(est.confidence.lo, 0.0);
  EXPECT_LE(est.confidence.lo, est.probability);
  EXPECT_GE(est.confidence.hi, est.probability);
  // ~1e8 brute trials of work from a few thousand simulated ones.
  EXPECT_GT(est.effective_trials, 100.0 * est.simulated_trials);
}

TEST(RareEvent, SubsetSimulationEstimatesAGaussianTail) {
  eng::MonteCarloRunner runner;
  const double beta = 4.5;
  const double p_true = normal_cdf(-beta);
  eng::RareEventConfig cfg;
  cfg.method = eng::RareEventMethod::kSplitting;
  const auto est = eng::subset_simulation(
      runner, 1, 1500, 13, cfg,
      [beta](const double* z) { return z[0] - beta; });
  EXPECT_FALSE(est.level_probabilities.empty());
  EXPECT_GT(est.probability, 0.0);
  // Subset-simulation error bounds are approximate; a 3x bracket on a
  // 3.4e-6 tail is already far beyond brute-force reach at this cost.
  EXPECT_GT(est.probability, p_true / 3.0);
  EXPECT_LT(est.probability, p_true * 3.0);
}

TEST(RareEvent, DriversAreBitIdenticalAcrossThreadCounts) {
  const double beta = 3.8;
  auto run_both = [&](unsigned threads) {
    eng::RunnerConfig rc;
    rc.threads = threads;
    eng::MonteCarloRunner runner(rc);
    eng::RareEventConfig cfg;
    const double tilt[1] = {beta};
    const auto is = eng::importance_rounds(
        runner, 500, 21, cfg,
        [&](util::Rng& rng, std::size_t, util::WeightedStats& ws) {
          double z[1];
          rng.normal_fill_tilted(z, 1, tilt, 1);
          if (z[0] > beta) {
            ws.add(1.0, std::exp(0.5 * beta * beta - beta * z[0]));
          } else {
            ws.add(0.0, 0.0);
          }
        });
    const auto split = eng::subset_simulation(
        runner, 2, 400, 22, cfg,
        [beta](const double* z) { return 0.5 * (z[0] + z[1]) * 1.41421356 - beta; });
    return std::pair{is, split};
  };
  const auto [is1, split1] = run_both(1);
  const auto [is4, split4] = run_both(4);
  EXPECT_EQ(is1.probability, is4.probability);
  EXPECT_EQ(is1.rel_error, is4.rel_error);
  EXPECT_EQ(is1.simulated_trials, is4.simulated_trials);
  EXPECT_EQ(split1.probability, split4.probability);
  EXPECT_EQ(split1.level_probabilities, split4.level_probabilities);
}

// --- read-error model hook --------------------------------------------------

TEST(NoiseMargin, AtZeroDeviatesEqualsTheNominalMargin) {
  const auto params = dev::MtjParams::reference_device(35e-9);
  rdo::ReadPathConfig path;
  path.bitline.rows = 16;
  const rdo::ReadErrorModel model(params, path);
  const std::vector<int> column(16, 0);
  const auto op = model.operating_point(15, column);
  const double z0[3] = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(model.noise_margin(op, dev::MtjState::kParallel, z0),
                   op.margin);
  EXPECT_DOUBLE_EQ(model.noise_margin(op, dev::MtjState::kAntiParallel, z0),
                   op.margin);
  // Comparator offset moves the two stored states in opposite directions.
  const double zo[3] = {0.0, 1.0, 0.0};
  EXPECT_GT(model.noise_margin(op, dev::MtjState::kParallel, zo), op.margin);
  EXPECT_LT(model.noise_margin(op, dev::MtjState::kAntiParallel, zo),
            op.margin);
}

// --- workload wirings: overlap-regime agreement -----------------------------

mem::WerConfig overlap_wer_config() {
  mem::WerConfig cfg;
  cfg.array.device = dev::MtjParams::reference_device(35e-9);
  cfg.array.pitch = 1.5 * 35e-9;
  cfg.array.rows = cfg.array.cols = 5;
  cfg.pulse.voltage = 0.9;
  cfg.direction = dev::SwitchDirection::kApToP;
  cfg.trials = 2000;
  const dev::MtjDevice device(cfg.array.device);
  // ~1e-2 analytic WER: resolvable by brute force AND by both drivers.
  cfg.pulse.width = 1.8 * device.switching_time(dev::SwitchDirection::kApToP,
                                                0.9,
                                                device.intra_stray_field());
  return cfg;
}

/// |a - b| within z * sqrt(se_a^2 + se_b^2): the two estimates agree within
/// their combined reported uncertainty.
void expect_agree(double a, double se_a, double b, double se_b, double z) {
  EXPECT_LE(std::abs(a - b), z * std::hypot(se_a, se_b) + 1e-300)
      << a << " +- " << se_a << " vs " << b << " +- " << se_b;
}

TEST(RareEventOverlap, WerDriversAgreeWithBruteForce) {
  auto cfg = overlap_wer_config();
  eng::MonteCarloRunner runner;

  util::Rng rng_b(42);
  const auto brute = mem::measure_wer(cfg, rng_b, runner);
  ASSERT_GT(brute.errors, 10u);  // genuinely in the overlap regime

  cfg.rare.method = eng::RareEventMethod::kImportanceSampling;
  util::Rng rng_i(42);
  const auto is = mem::measure_wer(cfg, rng_i, runner);
  cfg.rare.method = eng::RareEventMethod::kSplitting;
  util::Rng rng_s(42);
  const auto split = mem::measure_wer(cfg, rng_s, runner);

  const double se_b = brute.wer * brute.rare.rel_error;
  expect_agree(is.wer, is.wer * is.rare.rel_error, brute.wer, se_b, 3.0);
  expect_agree(split.wer, split.wer * split.rare.rel_error, brute.wer, se_b,
               3.0);
  // Both accelerated runs actually report quality.
  EXPECT_LT(is.rare.rel_error, 0.5);
  EXPECT_LT(split.rare.rel_error, 0.5);
}

TEST(RareEventOverlap, RetentionDriversMatchTheClosedForm) {
  mem::RetentionEnsembleConfig cfg;
  cfg.array.device = dev::MtjParams::reference_device(35e-9);
  cfg.array.device.delta0 = 18.0;
  cfg.array.pitch = 1.5 * 35e-9;
  cfg.array.rows = cfg.array.cols = 4;
  cfg.array.temperature = 380.0;
  cfg.pattern = arr::PatternKind::kAllZero;
  cfg.hold = 1e-7;  // exact fault probability ~3e-2
  cfg.trials = 2000;
  eng::MonteCarloRunner runner;

  util::Rng rng_b(9);
  const auto brute = mem::measure_retention_faults(cfg, rng_b, runner);
  const double exact = brute.exact_fault_probability;
  ASSERT_GT(exact, 1e-3);
  ASSERT_LT(exact, 0.2);

  cfg.rare.method = eng::RareEventMethod::kImportanceSampling;
  util::Rng rng_i(9);
  const auto is = mem::measure_retention_faults(cfg, rng_i, runner);
  cfg.rare.method = eng::RareEventMethod::kSplitting;
  util::Rng rng_s(9);
  const auto split = mem::measure_retention_faults(cfg, rng_s, runner);

  EXPECT_EQ(is.exact_fault_probability, exact);
  expect_agree(brute.fault_probability, exact * brute.rare.rel_error, exact,
               0.0, 3.0);
  expect_agree(is.fault_probability,
               is.fault_probability * is.rare.rel_error, exact, 0.0, 3.0);
  expect_agree(split.fault_probability,
               split.fault_probability * split.rare.rel_error, exact, 0.0,
               3.5);
}

TEST(RareEventOverlap, RerDriversAgreeWithBruteForce) {
  rdo::RerConfig cfg;
  cfg.path.v_read = 0.05;  // starved margin: measurable error rate
  cfg.trials = 4000;
  cfg.hz_stray = dev::MtjDevice(cfg.device).intra_stray_field();
  eng::MonteCarloRunner runner;

  util::Rng rng_b(17);
  const auto brute = rdo::measure_rer(cfg, rng_b, runner);
  ASSERT_GT(brute.read_errors, 20u);

  cfg.rare.method = eng::RareEventMethod::kImportanceSampling;
  util::Rng rng_i(17);
  const auto is = rdo::measure_rer(cfg, rng_i, runner);
  cfg.rare.method = eng::RareEventMethod::kSplitting;
  util::Rng rng_s(17);
  const auto split = rdo::measure_rer(cfg, rng_s, runner);

  const double se_b = brute.rer * brute.rare.rel_error;
  expect_agree(is.rer, is.rer * is.rare.rel_error, brute.rer, se_b, 3.0);
  expect_agree(split.rer, split.rer * split.rare.rel_error, brute.rer, se_b,
               3.5);
}

// --- workload wirings: determinism contract ---------------------------------

template <class Config, class Result, class Measure>
void expect_thread_invariant(Config cfg, Measure measure,
                             double Result::*probability) {
  Result ref;
  for (unsigned threads : {1u, 4u}) {
    eng::RunnerConfig rc;
    rc.threads = threads;
    eng::MonteCarloRunner runner(rc);
    util::Rng rng(1234);
    const Result r = measure(cfg, rng, runner);
    if (threads == 1) {
      ref = r;
    } else {
      EXPECT_EQ(r.*probability, ref.*probability);  // bitwise
      EXPECT_EQ(r.rare.rel_error, ref.rare.rel_error);
      EXPECT_EQ(r.rare.simulated_trials, ref.rare.simulated_trials);
      EXPECT_EQ(r.rare.level_probabilities, ref.rare.level_probabilities);
    }
  }
}

TEST(RareEventDeterminism, WerDriversAreThreadCountInvariant) {
  auto cfg = overlap_wer_config();
  cfg.trials = 600;
  for (auto method : {eng::RareEventMethod::kImportanceSampling,
                      eng::RareEventMethod::kSplitting}) {
    cfg.rare.method = method;
    expect_thread_invariant<mem::WerConfig, mem::WerResult>(
        cfg,
        [](const mem::WerConfig& c, util::Rng& rng,
           eng::MonteCarloRunner& runner) {
          return mem::measure_wer(c, rng, runner);
        },
        &mem::WerResult::wer);
  }
}

TEST(RareEventDeterminism, RetentionDriversAreThreadCountInvariant) {
  mem::RetentionEnsembleConfig cfg;
  cfg.array.device = dev::MtjParams::reference_device(35e-9);
  cfg.array.device.delta0 = 32.0;
  cfg.array.pitch = 1.5 * 35e-9;
  cfg.array.rows = cfg.array.cols = 4;
  cfg.array.temperature = 380.0;
  cfg.hold = 1e-4;
  cfg.trials = 600;
  for (auto method : {eng::RareEventMethod::kImportanceSampling,
                      eng::RareEventMethod::kSplitting}) {
    cfg.rare.method = method;
    expect_thread_invariant<mem::RetentionEnsembleConfig,
                            mem::RetentionEnsembleResult>(
        cfg,
        [](const mem::RetentionEnsembleConfig& c, util::Rng& rng,
           eng::MonteCarloRunner& runner) {
          return mem::measure_retention_faults(c, rng, runner);
        },
        &mem::RetentionEnsembleResult::fault_probability);
  }
}

TEST(RareEventDeterminism, RerDriversAreThreadCountInvariant) {
  rdo::RerConfig cfg;
  cfg.path.v_read = 0.08;
  cfg.trials = 600;
  cfg.hz_stray = dev::MtjDevice(cfg.device).intra_stray_field();
  for (auto method : {eng::RareEventMethod::kImportanceSampling,
                      eng::RareEventMethod::kSplitting}) {
    cfg.rare.method = method;
    expect_thread_invariant<rdo::RerConfig, rdo::RerResult>(
        cfg,
        [](const rdo::RerConfig& c, util::Rng& rng,
           eng::MonteCarloRunner& runner) {
          return rdo::measure_rer(c, rng, runner);
        },
        &rdo::RerResult::rer);
  }
}

rdo::ReadDisturbConfig fast_disturb_config() {
  rdo::ReadDisturbConfig cfg;
  cfg.device.delta0 = 14.0;  // thermally active: cheap trajectories
  cfg.path.v_read = 0.14;
  cfg.path.bitline.rows = 16;
  cfg.duration = 3e-9;
  cfg.dt = 2e-12;
  cfg.trials = 48;
  cfg.hz_stray = dev::MtjDevice(cfg.device).intra_stray_field();
  return cfg;
}

TEST(RareEventDeterminism, ReadDisturbDriversAreThreadCountInvariant) {
  auto cfg = fast_disturb_config();
  for (auto method : {eng::RareEventMethod::kImportanceSampling,
                      eng::RareEventMethod::kSplitting}) {
    cfg.rare.method = method;
    expect_thread_invariant<rdo::ReadDisturbConfig, rdo::ReadDisturbResult>(
        cfg,
        [](const rdo::ReadDisturbConfig& c, util::Rng& rng,
           eng::MonteCarloRunner& runner) {
          return rdo::measure_read_disturb(c, rng, runner);
        },
        &rdo::ReadDisturbResult::rate);
  }
}

TEST(RareEventDeterminism, ReadDisturbImportanceBatchedMatchesScalar) {
  // The tilted SoA kernel against the tilted scalar loop, end to end
  // through the importance-sampling driver: identical weights, identical
  // estimate.
  auto cfg = fast_disturb_config();
  cfg.rare.method = eng::RareEventMethod::kImportanceSampling;
  eng::MonteCarloRunner runner;

  cfg.batch_lanes = 0;
  util::Rng rng_s(55);
  const auto scalar = rdo::measure_read_disturb(cfg, rng_s, runner);
  for (std::size_t lanes : {std::size_t{3}, std::size_t{8}}) {
    cfg.batch_lanes = lanes;
    util::Rng rng_b(55);
    const auto batched = rdo::measure_read_disturb(cfg, rng_b, runner);
    EXPECT_EQ(batched.rate, scalar.rate) << "lanes " << lanes;
    EXPECT_EQ(batched.rare.rel_error, scalar.rare.rel_error)
        << "lanes " << lanes;
  }
  // The tilt makes disturbs common enough to estimate from 48-trial rounds.
  EXPECT_GT(scalar.rare.ess, 0.0);
}

TEST(RareEventDeterminism, ReadDisturbSplittingBatchedMatchesScalar) {
  auto cfg = fast_disturb_config();
  cfg.rare.method = eng::RareEventMethod::kSplitting;
  eng::MonteCarloRunner runner;

  cfg.batch_lanes = 0;
  util::Rng rng_s(56);
  const auto scalar = rdo::measure_read_disturb(cfg, rng_s, runner);
  cfg.batch_lanes = 8;
  util::Rng rng_b(56);
  const auto batched = rdo::measure_read_disturb(cfg, rng_b, runner);
  EXPECT_EQ(batched.rate, scalar.rate);
  EXPECT_EQ(batched.rare.level_probabilities,
            scalar.rare.level_probabilities);
  EXPECT_FALSE(scalar.rare.level_probabilities.empty());
}

}  // namespace
}  // namespace mram
