// Scenario-level scale-out integration: run_scenarios in shard, merge and
// checkpoint modes against the plain single-process run, comparing the CSV
// payloads byte for byte. These are the end-to-end counterparts of the
// engine-level tests in test_engine.cpp -- here the partials flow through
// the per-scenario subdirectories, the call counter reset in set_shard_io,
// and the divergence check in run_command.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/monte_carlo.h"
#include "scenario/registry.h"
#include "scenario/run_command.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mram::scn {
namespace {

namespace fs = std::filesystem;

/// Trial index at which mc_pair's second runner call starts throwing, or 0
/// for normal operation. File-global so the registry's scenario lambdas can
/// be toggled between an interrupted first attempt and a clean resume.
std::atomic<std::size_t> g_fail_from{0};

fs::path make_temp_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("mram_shard_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Two scenarios exercising the engine through the scenario layer:
///   mc_pair  -- two runner calls (scalar moments + a weighted tail sum),
///               the second interruptible via g_fail_from;
///   mc_solo  -- one runner call, so multi-scenario sweeps mix call counts.
/// Cells carry 17 digits so a single ULP of drift breaks the byte compare.
ScenarioRegistry mc_registry() {
  ScenarioRegistry registry;
  Scenario pair;
  pair.info.name = "mc_pair";
  pair.info.figure = "Test";
  pair.info.summary = "two-call Monte Carlo probe";
  pair.run = [](ScenarioContext& ctx) {
    const auto stats = ctx.runner.run<util::RunningStats>(
        ctx.scaled_trials(2000), ctx.seed,
        [](util::Rng& rng, std::size_t, util::RunningStats& acc) {
          acc.add(rng.normal(1.0, 2.0));
        });
    const auto tail = ctx.runner.run<util::WeightedStats>(
        ctx.scaled_trials(1500), ctx.seed + 1,
        [](util::Rng& rng, std::size_t i, util::WeightedStats& acc) {
          const std::size_t fail_from = g_fail_from.load();
          if (fail_from > 0 && i >= fail_from) {
            throw util::NumericalError("injected failure at trial " +
                                       std::to_string(i));
          }
          const double x = rng.normal();
          acc.add(x > 1.5 ? 1.0 : 0.0, rng.uniform(0.5, 1.5));
        });
    ResultSet out;
    out.add("moments", "scalar moments", {"mean", "stddev", "min", "max"})
        .add_row({Cell(stats.mean(), 17), Cell(stats.stddev(), 17),
                  Cell(stats.min(), 17), Cell(stats.max(), 17)});
    out.add("tail", "weighted tail estimate", {"mean", "rel_err", "ess"})
        .add_row({Cell(tail.mean(), 17), Cell(tail.rel_error(), 17),
                  Cell(tail.effective_samples(), 17)});
    return out;
  };
  registry.add(pair);

  Scenario solo;
  solo.info.name = "mc_solo";
  solo.info.figure = "Test";
  solo.info.summary = "one-call Monte Carlo probe";
  solo.run = [](ScenarioContext& ctx) {
    const auto stats = ctx.runner.run<util::RunningStats>(
        ctx.scaled_trials(900), ctx.seed,
        [](util::Rng& rng, std::size_t, util::RunningStats& acc) {
          acc.add(rng.uniform(-1.0, 1.0));
        });
    ResultSet out;
    out.add("u", "uniform moments", {"mean", "var"})
        .add_row({Cell(stats.mean(), 17), Cell(stats.variance(), 17)});
    return out;
  };
  registry.add(solo);
  return registry;
}

RunCommandOptions base_options(std::vector<std::string> names,
                               unsigned threads) {
  RunCommandOptions opt;
  opt.names = std::move(names);
  opt.format = "csv";
  opt.threads = threads;
  opt.seed = 2026;
  return opt;
}

/// Runs and returns the CSV payload (stdout), asserting success.
std::string run_csv(const ScenarioRegistry& registry,
                    const RunCommandOptions& opt) {
  std::ostringstream out, err;
  EXPECT_EQ(run_scenarios(registry, opt, out, err), 0) << err.str();
  return out.str();
}

TEST(ShardRun, FourWayMergeIsByteIdenticalToSingleProcess) {
  const auto registry = mc_registry();
  const std::vector<std::string> names{"mc_pair", "mc_solo"};
  const std::string reference = run_csv(registry, base_options(names, 1));
  ASSERT_NE(reference.find("# mc_pair/moments"), std::string::npos);

  const fs::path dir = make_temp_dir("four_way");
  for (std::size_t i = 0; i < 4; ++i) {
    auto opt = base_options(names, i % 2 == 0 ? 1 : 2);  // mixed thread counts
    opt.shard = eng::ShardSpec{i, 4};
    opt.partials_dir = dir.string();
    std::ostringstream out, err;
    ASSERT_EQ(run_scenarios(registry, opt, out, err), 0) << err.str();
    // Shard mode reports progress, never shard-local tables.
    EXPECT_NE(out.str().find("shard " + std::to_string(i) + "/4"),
              std::string::npos);
    EXPECT_EQ(out.str().find("# mc_pair"), std::string::npos);
  }
  // Per-scenario subdirectories with one dump per shard per runner call.
  EXPECT_TRUE(fs::exists(dir / "mc_pair"));
  EXPECT_TRUE(fs::exists(dir / "mc_solo"));

  auto merge_opt = base_options(names, 2);
  merge_opt.merge = true;
  merge_opt.merge_shards = 4;
  merge_opt.partials_dir = dir.string();
  EXPECT_EQ(run_csv(registry, merge_opt), reference);

  // Auto-detected shard count folds identically.
  merge_opt.merge_shards = 0;
  EXPECT_EQ(run_csv(registry, merge_opt), reference);
  fs::remove_all(dir);
}

TEST(ShardRun, MergeDetectsSurplusShardCalls) {
  // A shard directory holding more runner calls than the merge replays
  // means shard-local control flow diverged; the extra dumps must not be
  // silently dropped.
  const auto registry = mc_registry();
  const std::vector<std::string> names{"mc_solo"};
  const fs::path dir = make_temp_dir("diverged");
  for (std::size_t i = 0; i < 2; ++i) {
    auto opt = base_options(names, 1);
    opt.shard = eng::ShardSpec{i, 2};
    opt.partials_dir = dir.string();
    std::ostringstream out, err;
    ASSERT_EQ(run_scenarios(registry, opt, out, err), 0) << err.str();
  }
  // Fabricate a surplus call by duplicating shard 0's only dump as call 1.
  const fs::path scen = dir / "mc_solo";
  fs::path call0;
  for (const auto& entry : fs::directory_iterator(scen)) {
    if (entry.path().filename().string().find("shard-000") !=
        std::string::npos) {
      call0 = entry.path();
    }
  }
  ASSERT_FALSE(call0.empty());
  std::string surplus = call0.filename().string();
  surplus.replace(surplus.find("call-000000"), 11, "call-000001");
  fs::copy_file(call0, scen / surplus);

  auto merge_opt = base_options(names, 1);
  merge_opt.merge = true;
  merge_opt.partials_dir = dir.string();
  std::ostringstream out, err;
  EXPECT_EQ(run_scenarios(registry, merge_opt, out, err), 1);
  EXPECT_NE(err.str().find("control flow diverged"), std::string::npos);
  fs::remove_all(dir);
}

TEST(CheckpointRun, KilledScenarioResumesByteIdentically) {
  const auto registry = mc_registry();
  const std::vector<std::string> names{"mc_pair"};
  const std::string reference = run_csv(registry, base_options(names, 2));

  const fs::path dir = make_temp_dir("resume");
  // First attempt: the second runner call dies mid-run, after at least one
  // committed stride snapshot (the first call's .done file also survives).
  g_fail_from.store(600);
  {
    auto opt = base_options(names, 2);
    opt.checkpoint_dir = dir.string();
    std::ostringstream out, err;
    EXPECT_EQ(run_scenarios(registry, opt, out, err), 1);
    EXPECT_NE(err.str().find("FAIL mc_pair"), std::string::npos);
    EXPECT_NE(err.str().find("injected failure"), std::string::npos);
  }
  EXPECT_TRUE(fs::exists(dir / "mc_pair" / "call-000000.done"));
  EXPECT_TRUE(fs::exists(dir / "mc_pair" / "call-000001.part"));

  // Resume: completes from the snapshots, byte-identical to the plain run.
  g_fail_from.store(0);
  auto opt = base_options(names, 2);
  opt.checkpoint_dir = dir.string();
  opt.resume = true;
  EXPECT_EQ(run_csv(registry, opt), reference);
  EXPECT_TRUE(fs::exists(dir / "mc_pair" / "call-000001.done"));
  EXPECT_FALSE(fs::exists(dir / "mc_pair" / "call-000001.part"));
  fs::remove_all(dir);
}

TEST(CheckpointRun, UninterruptedCheckpointMatchesPlainRun) {
  const auto registry = mc_registry();
  const std::vector<std::string> names{"mc_pair", "mc_solo"};
  const std::string reference = run_csv(registry, base_options(names, 1));
  const fs::path dir = make_temp_dir("plain");
  auto opt = base_options(names, 1);
  opt.checkpoint_dir = dir.string();
  EXPECT_EQ(run_csv(registry, opt), reference);
  fs::remove_all(dir);
}

TEST(ShardRun, TrialScaleShapesTheReplayGeometry) {
  // A merge replayed with a different --trial-scale computes a different
  // trial count and must refuse the dumps instead of folding them wrong.
  const auto registry = mc_registry();
  const std::vector<std::string> names{"mc_solo"};
  const fs::path dir = make_temp_dir("scale");
  {
    auto opt = base_options(names, 1);
    opt.shard = eng::ShardSpec{0, 1};
    opt.partials_dir = dir.string();
    std::ostringstream out, err;
    ASSERT_EQ(run_scenarios(registry, opt, out, err), 0) << err.str();
  }
  auto merge_opt = base_options(names, 1);
  merge_opt.merge = true;
  merge_opt.partials_dir = dir.string();
  merge_opt.trial_scale = 0.5;
  std::ostringstream out, err;
  EXPECT_EQ(run_scenarios(registry, merge_opt, out, err), 1);
  EXPECT_NE(err.str().find("trials"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mram::scn
