// Unit tests for src/array: NP8 neighborhoods, the inter-cell solver, the
// coupling factor Psi and the generalized array field model.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "array/array_field.h"
#include "array/coupling_factor.h"
#include "array/data_pattern.h"
#include "array/intercell.h"
#include "array/neighborhood.h"
#include "device/mtj_device.h"
#include "magnetics/stray_field.h"
#include "util/error.h"
#include "util/units.h"

namespace mram::arr {
namespace {

using util::a_per_m_to_oe;
using util::oe_to_a_per_m;

dev::StackGeometry stack55() {
  dev::StackGeometry g;
  g.ecd = 55e-9;
  return g;
}

// --- neighborhood / NP8 -----------------------------------------------------

TEST(Neighborhood, OffsetsMatchPaperLayout) {
  const auto& offsets = neighbor_offsets();
  ASSERT_EQ(offsets.size(), 8u);
  int direct = 0, diagonal = 0;
  std::set<std::pair<int, int>> seen;
  for (const auto& o : offsets) {
    EXPECT_TRUE(o.dx >= -1 && o.dx <= 1);
    EXPECT_TRUE(o.dy >= -1 && o.dy <= 1);
    EXPECT_FALSE(o.dx == 0 && o.dy == 0);
    seen.insert({o.dx, o.dy});
    const int dist2 = o.dx * o.dx + o.dy * o.dy;
    if (o.diagonal) {
      EXPECT_EQ(dist2, 2);
      ++diagonal;
    } else {
      EXPECT_EQ(dist2, 1);
      ++direct;
    }
  }
  EXPECT_EQ(direct, 4);
  EXPECT_EQ(diagonal, 4);
  EXPECT_EQ(seen.size(), 8u);  // all offsets distinct
  // Paper order: C0..C3 direct, C4..C7 diagonal.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(offsets[i].diagonal);
  for (int i = 4; i < 8; ++i) EXPECT_TRUE(offsets[i].diagonal);
}

TEST(Np8, BitAccessAndCounts) {
  const Np8 np(0b10110101);
  EXPECT_EQ(np.value(), 0b10110101);
  EXPECT_EQ(np.bit(0), 1);
  EXPECT_EQ(np.bit(1), 0);
  EXPECT_EQ(np.bit(7), 1);
  EXPECT_EQ(np.ones_direct(), 2);    // low nibble 0101
  EXPECT_EQ(np.ones_diagonal(), 3);  // high nibble 1011
  EXPECT_EQ(np.ones_direct() + np.ones_diagonal(), 5);
}

TEST(Np8, ExtremePatterns) {
  EXPECT_EQ(Np8::all_parallel().value(), 0);
  EXPECT_EQ(Np8::all_antiparallel().value(), 255);
  EXPECT_EQ(Np8::all_parallel().ones_direct(), 0);
  EXPECT_EQ(Np8::all_antiparallel().ones_direct(), 4);
  EXPECT_EQ(Np8::all_antiparallel().ones_diagonal(), 4);
}

TEST(Np8, AllPatternsEnumerated) {
  const auto patterns = all_np8_patterns();
  EXPECT_EQ(patterns.size(), 256u);
  std::set<int> values;
  for (const auto& p : patterns) values.insert(p.value());
  EXPECT_EQ(values.size(), 256u);
}

TEST(Np8Class, TwentyFiveClassesCoverAllPatterns) {
  const auto classes = all_np8_classes();
  EXPECT_EQ(classes.size(), 25u);  // Fig. 4a: 25 distinct combinations
  int total = 0;
  for (const auto& c : classes) total += c.multiplicity();
  EXPECT_EQ(total, 256);
}

TEST(Np8Class, RepresentativeBelongsToClass) {
  for (const auto& c : all_np8_classes()) {
    const auto rep = c.representative();
    EXPECT_EQ(rep.ones_direct(), c.ones_direct);
    EXPECT_EQ(rep.ones_diagonal(), c.ones_diagonal);
  }
}

// --- inter-cell solver ------------------------------------------------------

TEST(InterCellSolver, RejectsOverlappingCells) {
  EXPECT_THROW(InterCellSolver(stack55(), 30e-9), util::ContractViolation);
}

TEST(InterCellSolver, Fig4aLevelsAtPaperDesignPoint) {
  // eCD = 55 nm, pitch = 90 nm (SK hynix design point of [2]): the paper
  // reports Hz_s_inter from -16 Oe (NP8 = 0) to +64 Oe (NP8 = 255) with
  // steps of ~15 Oe per direct and ~5 Oe per diagonal '1'.
  const InterCellSolver solver(stack55(), 90e-9);
  const double lo = a_per_m_to_oe(solver.field_for(Np8::all_parallel()));
  const double hi = a_per_m_to_oe(solver.field_for(Np8::all_antiparallel()));
  EXPECT_NEAR(lo, -16.0, 2.5);
  EXPECT_NEAR(hi, 64.0, 2.5);
  EXPECT_NEAR(hi - lo, 80.0, 1.0);
  EXPECT_NEAR(a_per_m_to_oe(solver.direct_step()), 15.0, 0.5);
  EXPECT_NEAR(a_per_m_to_oe(solver.diagonal_step()), 5.0, 0.5);
}

TEST(InterCellSolver, StepRatioNearInverseCubeOfDistance) {
  // Dipole far-field: direct/diagonal step ratio ~ (sqrt(2))^3 = 2.83.
  const InterCellSolver solver(stack55(), 110e-9);
  EXPECT_NEAR(solver.direct_step() / solver.diagonal_step(), 2.83, 0.25);
}

TEST(InterCellSolver, FieldRangeMatchesExtremePatterns) {
  const InterCellSolver solver(stack55(), 90e-9);
  const auto range = solver.field_range();
  EXPECT_DOUBLE_EQ(range.min, solver.field_for(Np8::all_parallel()));
  EXPECT_DOUBLE_EQ(range.max, solver.field_for(Np8::all_antiparallel()));
  EXPECT_LT(range.min, range.max);
}

TEST(InterCellSolver, DecompositionMatchesExplicitSuperposition) {
  // field_for must equal a from-scratch superposition of all 24 layer
  // sources for arbitrary patterns.
  const auto stack = stack55();
  const double pitch = 85e-9;
  const InterCellSolver solver(stack, pitch);
  for (int v : {0, 255, 0b00000001, 0b00010000, 0b10101010, 0b11001100}) {
    const Np8 np(v);
    mag::StrayFieldSolver direct;
    const auto& offsets = neighbor_offsets();
    for (int i = 0; i < 8; ++i) {
      const num::Vec3 cell{offsets[i].dx * pitch, offsets[i].dy * pitch, 0.0};
      direct.add_source("RL",
                        stack.source_for(dev::Layer::kReferenceLayer, cell));
      direct.add_source("HL", stack.source_for(dev::Layer::kHardLayer, cell));
      direct.add_source(
          "FL", stack.source_for(dev::Layer::kFreeLayer, cell,
                                 dev::bit_to_state(np.bit(i))));
    }
    EXPECT_NEAR(solver.field_for(np), direct.field_at({0, 0, 0}).z,
                std::abs(direct.field_at({0, 0, 0}).z) * 1e-9 + 1e-9)
        << "NP8 = " << v;
  }
}

TEST(InterCellSolver, FieldMonotoneInOnesCounts) {
  // Adding a '1' anywhere always raises Hz_s_inter (AP free layers point
  // along -z and contribute positively at the victim plane... the FL unit
  // contribution of a P neighbor is negative).
  const InterCellSolver solver(stack55(), 90e-9);
  for (int i = 0; i < 8; ++i) {
    EXPECT_LT(solver.fl_unit_field(i), 0.0) << "aggressor " << i;
  }
  EXPECT_THROW(solver.fl_unit_field(8), util::ContractViolation);
}

TEST(InterCellSolver, ClassFieldsGridMatchesSteps) {
  const InterCellSolver solver(stack55(), 90e-9);
  const auto fields = np8_class_fields(solver);
  ASSERT_EQ(fields.size(), 25u);
  // Field for class (d, g) = base + d*direct_step + g*diagonal_step.
  const double base = solver.field_for(Np8::all_parallel());
  for (const auto& cf : fields) {
    const double expected = base + cf.cls.ones_direct * solver.direct_step() +
                            cf.cls.ones_diagonal * solver.diagonal_step();
    EXPECT_NEAR(cf.hz, expected, std::abs(expected) * 1e-9 + 1e-9);
  }
}

TEST(InterCellSolver, CouplingDecaysWithPitch) {
  const auto stack = stack55();
  double prev = 1e300;
  for (double pitch : {90e-9, 120e-9, 160e-9, 200e-9}) {
    const InterCellSolver solver(stack, pitch);
    const auto range = solver.field_range();
    const double spread = range.max - range.min;
    EXPECT_LT(spread, prev);
    prev = spread;
  }
  // At 200 nm the variation is negligible (Psi ~ 0 in Fig. 4b).
  EXPECT_LT(a_per_m_to_oe(prev), 10.0);
}

// --- coupling factor Psi ----------------------------------------------------

TEST(CouplingFactor, MatchesRangeOverHc) {
  const auto stack = stack55();
  const InterCellSolver solver(stack, 90e-9);
  const double hc = oe_to_a_per_m(2200.0);
  const auto range = solver.field_range();
  EXPECT_NEAR(coupling_factor(solver, hc), (range.max - range.min) / hc,
              1e-15);
  // Paper: the 80 Oe spread over 2.2 kOe gives Psi ~ 3.6 %.
  EXPECT_NEAR(coupling_factor(stack, 90e-9, hc), 0.036, 0.004);
}

TEST(CouplingFactor, PaperPitchMultiples) {
  // Fig. 5 annotations for eCD = 35 nm: Psi ~ 1 % at 3x, ~2 % at 2x,
  // ~7 % at 1.5x eCD. Our calibration gives 0.9 / 3.0 / 7.6 %.
  dev::StackGeometry g;
  g.ecd = 35e-9;
  const double hc = oe_to_a_per_m(2200.0);
  EXPECT_NEAR(coupling_factor(g, 3.0 * g.ecd, hc), 0.01, 0.004);
  EXPECT_NEAR(coupling_factor(g, 2.0 * g.ecd, hc), 0.025, 0.008);
  EXPECT_NEAR(coupling_factor(g, 1.5 * g.ecd, hc), 0.07, 0.015);
}

TEST(CouplingFactor, MonotoneDecreasingInPitch) {
  dev::StackGeometry g;
  g.ecd = 35e-9;
  const double hc = oe_to_a_per_m(2200.0);
  const auto points = psi_vs_pitch(g, 1.5 * g.ecd, 200e-9, 24, hc);
  ASSERT_EQ(points.size(), 24u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].psi, points[i - 1].psi);
  }
}

TEST(CouplingFactor, LargerDevicesCoupleMoreAtFixedPitch) {
  // Fig. 4b: at a given pitch, bigger eCD -> bigger Psi (larger moments and
  // smaller edge-to-edge gap).
  const double hc = oe_to_a_per_m(2200.0);
  const double pitch = 100e-9;
  double prev = 0.0;
  for (double ecd : {20e-9, 35e-9, 55e-9}) {
    dev::StackGeometry g;
    g.ecd = ecd;
    const double psi = coupling_factor(g, pitch, hc);
    EXPECT_GT(psi, prev);
    prev = psi;
  }
}

TEST(CouplingFactor, MaxDensityPitchHitsThreshold) {
  dev::StackGeometry g;
  g.ecd = 35e-9;
  const double hc = oe_to_a_per_m(2200.0);
  const double pitch = max_density_pitch(g, 0.02, hc, 1.5 * g.ecd, 200e-9);
  EXPECT_NEAR(coupling_factor(g, pitch, hc), 0.02, 1e-6);
  // Paper: ~80 nm for eCD = 35 nm (our calibration: ~76 nm).
  EXPECT_GT(pitch, 65e-9);
  EXPECT_LT(pitch, 90e-9);
  // Threshold already met at max density -> returns pitch_min.
  EXPECT_DOUBLE_EQ(max_density_pitch(g, 0.5, hc, 1.5 * g.ecd, 200e-9),
                   1.5 * g.ecd);
  // Unreachable threshold throws.
  EXPECT_THROW(max_density_pitch(g, 1e-6, hc, 1.5 * g.ecd, 200e-9),
               util::NumericalError);
}

// --- DataGrid and patterns --------------------------------------------------

TEST(DataGrid, BasicOperations) {
  DataGrid g(3, 4, 0);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 4u);
  EXPECT_EQ(g.popcount(), 0u);
  g.set(2, 3, 1);
  EXPECT_EQ(g.at(2, 3), 1);
  EXPECT_EQ(g.popcount(), 1u);
  EXPECT_THROW(g.at(3, 0), util::ContractViolation);
  EXPECT_THROW(g.set(0, 0, 2), util::ContractViolation);
  EXPECT_THROW(DataGrid(0, 1), util::ContractViolation);
}

TEST(DataPattern, GeneratorsProduceExpectedDensity) {
  util::Rng rng(5);
  EXPECT_EQ(make_pattern(PatternKind::kAllZero, 4, 4, rng).popcount(), 0u);
  EXPECT_EQ(make_pattern(PatternKind::kAllOne, 4, 4, rng).popcount(), 16u);
  EXPECT_EQ(make_pattern(PatternKind::kCheckerboard, 4, 4, rng).popcount(),
            8u);
  EXPECT_EQ(make_pattern(PatternKind::kRowStripes, 4, 4, rng).popcount(), 8u);
  EXPECT_EQ(make_pattern(PatternKind::kColStripes, 4, 4, rng).popcount(), 8u);
  const auto rnd = make_pattern(PatternKind::kRandom, 32, 32, rng);
  EXPECT_GT(rnd.popcount(), 384u);
  EXPECT_LT(rnd.popcount(), 640u);
}

TEST(DataPattern, InvertFlipsEverything) {
  util::Rng rng(6);
  const auto cb = make_pattern(PatternKind::kCheckerboard, 5, 5, rng);
  const auto inv = make_pattern(PatternKind::kCheckerboard, 5, 5, rng, true);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(cb.at(r, c) + inv.at(r, c), 1);
    }
  }
}

TEST(DataPattern, Names) {
  for (auto kind : deterministic_patterns()) {
    EXPECT_STRNE(to_string(kind), "?");
  }
  EXPECT_STREQ(to_string(PatternKind::kRandom), "random");
}

// --- ArrayFieldModel --------------------------------------------------------

TEST(ArrayFieldModel, Radius1CenterMatchesInterCellSolver) {
  const auto stack = stack55();
  const double pitch = 90e-9;
  const ArrayFieldModel model(stack, pitch, 1);
  const InterCellSolver solver(stack, pitch);

  util::Rng rng(7);
  for (int v : {0, 255, 0b01100110}) {
    const Np8 np(v);
    // Build a 3x3 grid with the victim at (1,1) and aggressors per NP8.
    DataGrid grid(3, 3, 0);
    const auto& offsets = neighbor_offsets();
    for (int i = 0; i < 8; ++i) {
      grid.set(static_cast<std::size_t>(1 + offsets[i].dy),
               static_cast<std::size_t>(1 + offsets[i].dx), np.bit(i));
    }
    EXPECT_NEAR(model.field_at(grid, 1, 1), solver.field_for(np),
                std::abs(solver.field_for(np)) * 1e-9 + 1e-9)
        << "NP8 = " << v;
  }
}

TEST(ArrayFieldModel, EdgeCellsSeeFewerAggressors) {
  const auto stack = stack55();
  const ArrayFieldModel model(stack, 90e-9, 1);
  DataGrid grid(5, 5, 1);  // all AP: every aggressor pushes Hz up
  const double center = model.field_at(grid, 2, 2);
  const double corner = model.field_at(grid, 0, 0);
  EXPECT_GT(center, corner);
  // Corner has exactly 3 aggressors; verify via an explicit 2x2 grid.
  DataGrid g22(2, 2, 1);
  EXPECT_NEAR(model.field_at(g22, 0, 0), corner, std::abs(corner) * 1e-12);
}

TEST(ArrayFieldModel, WiderRadiusAddsFarNeighbors) {
  const auto stack = stack55();
  const ArrayFieldModel r1(stack, 90e-9, 1);
  const ArrayFieldModel r2(stack, 90e-9, 2);
  DataGrid grid(7, 7, 1);
  const double f1 = r1.field_at(grid, 3, 3);
  const double f2 = r2.field_at(grid, 3, 3);
  EXPECT_NE(f1, f2);
  // The 5x5 correction is small but positive for the all-AP pattern.
  EXPECT_GT(f2, f1);
  EXPECT_LT(std::abs(f2 - f1), 0.35 * std::abs(f1));
}

TEST(ArrayFieldModel, FieldMapCoversAllCells) {
  const ArrayFieldModel model(stack55(), 90e-9, 1);
  DataGrid grid(3, 4, 0);
  const auto map = model.field_map(grid);
  EXPECT_EQ(map.size(), 12u);
  // Uniform data: all interior-free map is symmetric; corners equal.
  EXPECT_NEAR(map.front(), map[3], std::abs(map.front()) * 1e-9);
}

TEST(ArrayFieldModel, Validation) {
  EXPECT_THROW(ArrayFieldModel(stack55(), 90e-9, 0), util::ContractViolation);
  EXPECT_THROW(ArrayFieldModel(stack55(), 10e-9, 1), util::ContractViolation);
}

// Property sweep: the NP8 field is affine in the ones counts at any pitch.
class InterCellAffineProperty : public ::testing::TestWithParam<double> {};

TEST_P(InterCellAffineProperty, FieldAffineInCounts) {
  dev::StackGeometry g;
  g.ecd = 35e-9;
  const double pitch = GetParam() * g.ecd;
  const InterCellSolver solver(g, pitch);
  const double base = solver.field_for(Np8::all_parallel());
  for (const auto& cls : all_np8_classes()) {
    const double expected = base + cls.ones_direct * solver.direct_step() +
                            cls.ones_diagonal * solver.diagonal_step();
    const double actual = solver.field_for(cls.representative());
    EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-9 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Pitches, InterCellAffineProperty,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0, 5.0));


// --- Psi definition variants ---------------------------------------------------

TEST(CouplingFactor, DefinitionOrdering) {
  const InterCellSolver solver(stack55(), 90e-9);
  const double hc = oe_to_a_per_m(2200.0);
  const double max_var =
      coupling_factor(solver, hc, PsiDefinition::kMaxVariation);
  const double max_mag =
      coupling_factor(solver, hc, PsiDefinition::kMaxMagnitude);
  const double stddev = coupling_factor(solver, hc, PsiDefinition::kStdDev);
  // The paper's definition equals the two-argument overload.
  EXPECT_DOUBLE_EQ(max_var, coupling_factor(solver, hc));
  // Std-dev over patterns is always below the full range.
  EXPECT_LT(stddev, max_var);
  EXPECT_GT(stddev, 0.0);
  // For this stack |max| (64.5 Oe) is below the range (80 Oe).
  EXPECT_LT(max_mag, max_var);
  EXPECT_GT(max_mag, 0.5 * max_var);
}

TEST(CouplingFactor, StdDevMatchesBinomialDecomposition) {
  // Hz is affine in independent +/-1 bits, so the pattern variance is the
  // sum of the per-neighbor unit-field variances: sum_i fl_i^2 (each bit
  // contributes +/-fl_i with equal probability).
  const InterCellSolver solver(stack55(), 90e-9);
  double var = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double f = solver.fl_unit_field(i);
    var += f * f;
  }
  const double hc = oe_to_a_per_m(2200.0);
  const double expected = std::sqrt(var) / hc;
  // Sample std-dev over 256 patterns carries a (n/(n-1)) correction.
  EXPECT_NEAR(coupling_factor(solver, hc, PsiDefinition::kStdDev), expected,
              expected * 0.01);
}

TEST(InterCell, FieldVectorMatchesScalarSolver) {
  const auto stack = stack55();
  const InterCellSolver solver(stack, 90e-9);
  for (int v : {0, 255, 0b00101001}) {
    const auto h = intercell_field_vector(stack, 90e-9, Np8(v));
    EXPECT_NEAR(h.z, solver.field_for(Np8(v)),
                std::abs(solver.field_for(Np8(v))) * 1e-9 + 1e-9);
    // In-plane components cancel at the victim FL mid-plane center.
    EXPECT_NEAR(h.x, 0.0, 1.0);
    EXPECT_NEAR(h.y, 0.0, 1.0);
  }
}


// Property sweep: edge and corner victims always see weaker coupling than
// interior cells under uniform data (fewer aggressors).
class EdgeVictimProperty : public ::testing::TestWithParam<double> {};

TEST_P(EdgeVictimProperty, InteriorDominatesEdges) {
  dev::StackGeometry g;
  g.ecd = 35e-9;
  const ArrayFieldModel model(g, GetParam() * g.ecd, 1);
  DataGrid grid(5, 5, 1);  // uniform AP: every aggressor adds +Hz
  const double interior = model.field_at(grid, 2, 2);
  const double edge = model.field_at(grid, 0, 2);
  const double corner = model.field_at(grid, 0, 0);
  EXPECT_GT(interior, edge);
  EXPECT_GT(edge, corner);
  EXPECT_GT(corner, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Pitches, EdgeVictimProperty,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace mram::arr
