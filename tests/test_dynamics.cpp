// Tests for src/dynamics: macrospin LLG solver physics (norm conservation,
// precession frequency, damping relaxation, STT critical current consistency
// with Eq. 2) and the device-to-LLG bridge.

#include <gtest/gtest.h>

#include <cmath>

#include "device/mtj_device.h"
#include "dynamics/llg.h"
#include "dynamics/llg_batch.h"
#include "dynamics/switching_sim.h"
#include "engine/monte_carlo.h"
#include "util/constants.h"
#include "util/error.h"
#include "util/units.h"

namespace mram::dyn {
namespace {

using dev::MtjParams;
using dev::SwitchDirection;
using num::Vec3;

LlgParams base_params() {
  LlgParams p;
  p.hk = util::oe_to_a_per_m(4646.8);
  p.alpha = 0.03;
  p.ms = 0.6e6;
  p.volume = 1.3e-24;
  p.temperature = 0.0;
  return p;
}

TEST(Llg, ValidationRejectsBadParams) {
  auto p = base_params();
  p.alpha = 0.0;
  EXPECT_THROW(p.validate(), util::ConfigError);
  p = base_params();
  p.spin_polarization = {0.0, 0.0, 2.0};
  EXPECT_THROW(p.validate(), util::ConfigError);
  p = base_params();
  p.temperature = -1.0;
  EXPECT_THROW(p.validate(), util::ConfigError);
}

TEST(Llg, NormIsConserved) {
  const MacrospinSim sim(base_params());
  const Vec3 m0 = num::normalized({0.3, 0.1, 0.95});
  std::vector<TrajectoryPoint> traj;
  sim.run(m0, 2e-9, 1e-13, &traj, 100);
  for (const auto& pt : traj) {
    EXPECT_NEAR(num::norm(pt.m), 1.0, 1e-9);
  }
}

TEST(Llg, RelaxesToEasyAxis) {
  // With damping and no drive, a tilted moment relaxes to +z (closest well).
  const MacrospinSim sim(base_params());
  const Vec3 m0 = num::normalized({0.5, 0.0, 0.87});
  const Vec3 m1 = sim.run(m0, 20e-9, 1e-13);
  EXPECT_GT(m1.z, 0.999);
}

TEST(Llg, RelaxesToNearestWell) {
  const MacrospinSim sim(base_params());
  const Vec3 m0 = num::normalized({0.5, 0.0, -0.87});
  const Vec3 m1 = sim.run(m0, 20e-9, 1e-13);
  EXPECT_LT(m1.z, -0.999);
}

TEST(Llg, PrecessionFrequencyMatchesKittel) {
  // Small tilt about +z: precession at f = gamma mu0 (Hk + Hext) / 2pi
  // (uniaxial film with the field along the axis).
  auto p = base_params();
  p.alpha = 1e-4;  // nearly undamped so the frequency is clean
  const MacrospinSim sim(p);

  const double theta = 0.05;
  const Vec3 m0{std::sin(theta), 0.0, std::cos(theta)};
  std::vector<TrajectoryPoint> traj;
  const double dt = 1e-14;
  sim.run(m0, 0.5e-9, dt, &traj, 1);

  // Count zero crossings of m_y to estimate the period.
  int crossings = 0;
  double first = -1.0, last = -1.0;
  for (std::size_t i = 1; i < traj.size(); ++i) {
    if (traj[i - 1].m.y * traj[i].m.y < 0.0) {
      ++crossings;
      if (first < 0.0) first = traj[i].t;
      last = traj[i].t;
    }
  }
  ASSERT_GT(crossings, 4);
  const double period = 2.0 * (last - first) / (crossings - 1);
  const double f_measured = 1.0 / period;
  const double f_expected = util::kGyromagneticRatio * util::kMu0 * p.hk *
                            std::cos(theta) / (2.0 * util::kPi);
  EXPECT_NEAR(f_measured, f_expected, f_expected * 0.02);
}

TEST(Llg, SpinTorqueFieldFormula) {
  auto p = base_params();
  p.current = 100e-6;
  const double expected = util::kHbar * p.stt_efficiency * p.current /
                          (2.0 * util::kElementaryCharge * util::kMu0 * p.ms *
                           p.volume);
  EXPECT_NEAR(p.spin_torque_field(), expected, std::abs(expected) * 1e-12);
  p.current = -100e-6;
  EXPECT_LT(p.spin_torque_field(), 0.0);
}

TEST(Llg, SwitchesAboveCriticalTorqueOnly) {
  // Linearized critical spin-torque field: a_j = alpha * Hk. Drive from -z
  // toward +z with p = +z; check bracketing around the threshold.
  auto p = base_params();
  const double aj_crit = p.alpha * p.hk;
  const double i_per_aj = 1.0 / LlgParams{.ms = p.ms, .volume = p.volume,
                                          .stt_efficiency = p.stt_efficiency,
                                          .current = 1.0}
                                    .spin_torque_field();

  const Vec3 m0 = num::normalized({0.02, 0.0, -1.0});
  {
    auto strong = p;
    strong.current = 1.6 * aj_crit * i_per_aj;
    const MacrospinSim sim(strong);
    const Vec3 m1 = sim.run(m0, 60e-9, 2e-13);
    EXPECT_GT(m1.z, 0.9) << "60 % overdrive must switch";
  }
  {
    auto weak = p;
    weak.current = 0.5 * aj_crit * i_per_aj;
    const MacrospinSim sim(weak);
    const Vec3 m1 = sim.run(m0, 60e-9, 2e-13);
    EXPECT_LT(m1.z, -0.9) << "half-critical drive must not switch";
  }
}

TEST(Llg, ThermalSigmaScalesWithTemperatureAndStep) {
  auto p = base_params();
  p.temperature = 300.0;
  const MacrospinSim sim(p);
  const double s1 = sim.thermal_field_sigma(1e-12);
  const double s2 = sim.thermal_field_sigma(4e-12);
  EXPECT_NEAR(s1 / s2, 2.0, 1e-9);  // sigma ~ 1/sqrt(dt)

  auto cold = p;
  cold.temperature = 75.0;
  const MacrospinSim sim_cold(cold);
  EXPECT_NEAR(sim.thermal_field_sigma(1e-12) /
                  sim_cold.thermal_field_sigma(1e-12),
              2.0, 1e-9);  // sigma ~ sqrt(T)

  auto zero = p;
  zero.temperature = 0.0;
  EXPECT_DOUBLE_EQ(MacrospinSim(zero).thermal_field_sigma(1e-12), 0.0);
}

TEST(Llg, RunUntilSwitchDetectsCrossing) {
  auto p = base_params();
  const double aj_crit = p.alpha * p.hk;
  p.current = 2.0 * aj_crit /
              LlgParams{.ms = p.ms, .volume = p.volume,
                        .stt_efficiency = p.stt_efficiency, .current = 1.0}
                  .spin_torque_field();
  const MacrospinSim sim(p);
  util::Rng rng(3);
  const auto result =
      sim.run_until_switch(num::normalized({0.05, 0.0, -1.0}), 100e-9, 2e-13,
                           rng);
  EXPECT_TRUE(result.switched);
  EXPECT_GT(result.time, 0.0);
  EXPECT_LT(result.time, 100e-9);
}

// --- batched SoA kernel vs scalar reference ---------------------------------

LlgParams thermal_driven_params() {
  auto p = base_params();
  p.temperature = 300.0;
  const double aj_crit = p.alpha * p.hk;
  p.current = 1.5 * aj_crit /
              LlgParams{.ms = p.ms, .volume = p.volume,
                        .stt_efficiency = p.stt_efficiency, .current = 1.0}
                  .spin_torque_field();
  return p;
}

/// Runs `lanes` trials through both kernels on identical per-lane streams
/// and requires bit-identical SwitchResults.
void expect_batch_matches_scalar(const LlgParams& p, std::size_t lanes,
                                 double duration, double dt,
                                 std::uint64_t seed) {
  const MacrospinSim scalar(p);
  BatchMacrospinSim batch(p);

  std::vector<Vec3> m0(lanes);
  util::Rng tilt(seed);
  for (auto& m : m0) {
    m = num::normalized({0.08 * tilt.uniform(-1.0, 1.0),
                         0.08 * tilt.uniform(-1.0, 1.0), -1.0});
  }

  std::vector<SwitchResult> expected(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    util::Rng rng = util::Rng::stream(seed, l);
    expected[l] = scalar.run_until_switch(m0[l], duration, dt, rng);
  }

  std::vector<util::Rng> rngs;
  for (std::size_t l = 0; l < lanes; ++l) {
    rngs.push_back(util::Rng::stream(seed, l));
  }
  std::vector<SwitchResult> got(lanes);
  batch.run_until_switch(lanes, m0.data(), rngs.data(), duration, dt,
                         got.data());

  for (std::size_t l = 0; l < lanes; ++l) {
    EXPECT_EQ(got[l].switched, expected[l].switched) << "lane " << l;
    EXPECT_EQ(got[l].time, expected[l].time) << "lane " << l;  // bitwise
  }
}

TEST(BatchLlg, BitIdenticalToScalarThermalDriven) {
  // Thermal field + overcritical STT: a window long enough that most lanes
  // switch (exercising compaction) but short enough that some do not.
  expect_batch_matches_scalar(thermal_driven_params(), 8, 8e-9, 2e-13, 42);
}

TEST(BatchLlg, BitIdenticalAtOddLaneCountsAndB1) {
  const auto p = thermal_driven_params();
  for (std::size_t lanes : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    expect_batch_matches_scalar(p, lanes, 3e-9, 2e-13, 1000 + lanes);
  }
}

TEST(BatchLlg, BitIdenticalAtSixteenLanes) {
  // Full 16-lane blocks route through the AVX-512 clone of the kernel when
  // the host supports it (and the AVX2/default clone otherwise); either way
  // the results must stay bitwise equal to the scalar reference, because
  // lane widening only regroups independent lanes.
  static_assert(BatchMacrospinSim::kAvx512Lanes == 16);
  const auto p = thermal_driven_params();
  expect_batch_matches_scalar(p, BatchMacrospinSim::kAvx512Lanes, 8e-9, 2e-13,
                              42);
  // 17 lanes: one full 16-block plus a 1-lane remainder in the same call.
  expect_batch_matches_scalar(p, 17, 3e-9, 2e-13, 77);
}

TEST(BatchLlg, PreferredLanesIsASupportedWidth) {
  const std::size_t lanes = BatchMacrospinSim::preferred_lanes();
  EXPECT_TRUE(lanes == BatchMacrospinSim::kDefaultLanes ||
              lanes == BatchMacrospinSim::kAvx512Lanes)
      << lanes;
}

TEST(BatchLlg, BitIdenticalDeterministicNoThermalField) {
  // temperature = 0: no rng draws at all; the pure SoA arithmetic must
  // still replay the scalar path exactly.
  auto p = thermal_driven_params();
  p.temperature = 0.0;
  expect_batch_matches_scalar(p, 4, 6e-9, 2e-13, 7);
}

TEST(BatchLlg, NoSwitchLanesReportFullDuration) {
  auto p = base_params();
  p.temperature = 0.0;  // no drive, no noise: nothing may switch
  const Vec3 m0[2] = {num::normalized({0.05, 0.0, 1.0}),
                      num::normalized({0.0, 0.05, 1.0})};
  util::Rng rngs[2] = {util::Rng(1), util::Rng(2)};
  SwitchResult out[2];
  BatchMacrospinSim batch(p);
  batch.run_until_switch(2, m0, rngs, 1e-9, 1e-12, out);
  for (const auto& r : out) {
    EXPECT_FALSE(r.switched);
    EXPECT_DOUBLE_EQ(r.time, 1e-9);
  }
}

TEST(BatchLlg, SwitchingStatsBatchedMatchesScalarAcrossThreads) {
  // The full ensemble: batched llg_switching_stats must reproduce the
  // scalar reference bit for bit -- same error counts and identical
  // RunningStats moments -- at 1 and 4 threads.
  const dev::MtjDevice device(MtjParams::reference_device(35e-9));
  const double vp = 1.1;
  SwitchingStats ref;
  {
    eng::RunnerConfig cfg;
    cfg.threads = 1;
    eng::MonteCarloRunner runner(cfg);
    util::Rng rng(404);
    ref = llg_switching_stats_scalar(device, SwitchDirection::kApToP, vp,
                                     0.0, 21, rng, 30e-9, 1e-12, 300.0,
                                     runner);
  }
  EXPECT_GT(ref.switched, 0u);
  for (unsigned threads : {1u, 4u}) {
    eng::RunnerConfig cfg;
    cfg.threads = threads;
    eng::MonteCarloRunner runner(cfg);
    util::Rng rng(404);
    const auto batched =
        llg_switching_stats(device, SwitchDirection::kApToP, vp, 0.0, 21,
                            rng, 30e-9, 1e-12, 300.0, runner);
    EXPECT_EQ(batched.switched, ref.switched) << threads << " threads";
    EXPECT_EQ(batched.trials, ref.trials);
    EXPECT_EQ(batched.mean_time, ref.mean_time) << threads << " threads";
    EXPECT_EQ(batched.stddev_time, ref.stddev_time) << threads << " threads";
  }
}

// --- device bridge ----------------------------------------------------------

TEST(SwitchingSim, BridgeMapsDeviceParameters) {
  const dev::MtjDevice device(MtjParams::reference_device(35e-9));
  const auto llg =
      llg_from_device(device, SwitchDirection::kApToP, 1.0, 0.0, 300.0);
  EXPECT_DOUBLE_EQ(llg.hk, device.params().hk);
  EXPECT_DOUBLE_EQ(llg.alpha, device.params().damping);
  // Ms * V equals the thermal moment.
  EXPECT_NEAR(llg.ms * llg.volume, device.thermal_moment(), 1e-30);
  // AP->P drives toward +z: positive current.
  EXPECT_GT(llg.current, 0.0);
  const auto llg_down =
      llg_from_device(device, SwitchDirection::kPToAp, 1.0, 0.0, 300.0);
  EXPECT_LT(llg_down.current, 0.0);
}

TEST(SwitchingSim, BridgeAppliesStrayField) {
  const dev::MtjDevice device(MtjParams::reference_device(35e-9));
  const double hz = util::oe_to_a_per_m(-150.0);
  const auto llg =
      llg_from_device(device, SwitchDirection::kApToP, 1.0, hz, 300.0);
  EXPECT_NEAR(llg.h_applied.z, hz, std::abs(hz) * 1e-12);
}

TEST(SwitchingSim, LlgSwitchingStatisticsReasonable) {
  // At a strong overdrive the stochastic LLG must switch essentially every
  // trial, on a nanosecond scale comparable with Sun's model.
  const dev::MtjDevice device(MtjParams::reference_device(35e-9));
  util::Rng rng(17);
  const double vp = 1.2;
  const auto stats = llg_switching_stats(device, SwitchDirection::kApToP, vp,
                                         0.0, 24, rng, 80e-9, 1e-12);
  EXPECT_EQ(stats.trials, 24u);
  EXPECT_GE(stats.switched, 22u);
  const double tw_sun =
      device.switching_time(SwitchDirection::kApToP, vp, 0.0);
  // Same order of magnitude (the analytic model carries a fitted prefactor).
  EXPECT_GT(stats.mean_time, 0.05 * tw_sun);
  EXPECT_LT(stats.mean_time, 20.0 * tw_sun);
}


// --- Stoner-Wohlfarth astroid --------------------------------------------------

TEST(Llg, StonerWohlfarthSwitchingFieldOnAxis) {
  // A field antiparallel to the moment switches it deterministically once
  // |H| exceeds Hk (on-axis astroid point). Bracket the threshold.
  auto p = base_params();
  const Vec3 m0 = num::normalized({0.02, 0.0, 1.0});
  {
    auto strong = p;
    strong.h_applied = {0.0, 0.0, -1.1 * p.hk};
    const Vec3 m1 = MacrospinSim(strong).run(m0, 20e-9, 1e-13);
    EXPECT_LT(m1.z, -0.9);
  }
  {
    auto weak = p;
    weak.h_applied = {0.0, 0.0, -0.9 * p.hk};
    const Vec3 m1 = MacrospinSim(weak).run(m0, 20e-9, 1e-13);
    EXPECT_GT(m1.z, 0.4);  // stays in the upper well (tilted by the field)
  }
}

TEST(Llg, AstroidMinimumAt45Degrees) {
  // The SW astroid: Hsw(psi) = Hk / (cos^{2/3}psi + sin^{2/3}psi)^{3/2},
  // minimal (= Hk/2) at 45 degrees. The static astroid only applies
  // quasi-statically; with realistic damping the ringing after an abrupt
  // field step switches below it (the "dynamic astroid"), so this test
  // uses heavy damping to suppress the transient.
  auto p = base_params();
  p.alpha = 0.8;
  const double c = std::cos(util::kPi / 4.0);
  const Vec3 m0 = num::normalized({0.01, 0.0, 1.0});
  {
    auto strong = p;
    strong.h_applied = {0.55 * p.hk * c, 0.0, -0.55 * p.hk * c};
    const Vec3 m1 = MacrospinSim(strong).run(m0, 30e-9, 1e-13);
    EXPECT_LT(m1.z, 0.0) << "0.55 Hk at 45 deg must switch";
  }
  {
    auto weak = p;
    weak.h_applied = {0.45 * p.hk * c, 0.0, -0.45 * p.hk * c};
    const Vec3 m1 = MacrospinSim(weak).run(m0, 30e-9, 1e-13);
    EXPECT_GT(m1.z, 0.0) << "0.45 Hk at 45 deg must not switch";
  }
}

}  // namespace
}  // namespace mram::dyn
