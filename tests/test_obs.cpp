// Observability layer tests: the metrics registry primitives, the JSON
// parser / metrics-document round trip, the Chrome-trace recorder, the
// serialized progress gate, the perf_event counter groups -- and the
// load-bearing integration contract that none of the four CLI surfaces
// (--metrics, --trace, --progress, --perf) can perturb results: CSV
// payloads stay byte-identical with instrumentation on and off, at 1 and
// 4 threads.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/monte_carlo.h"
#include "engine/shard.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_io.h"
#include "obs/perfctr.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "scenario/registry.h"
#include "scenario/run_command.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mram::scn {
namespace {

namespace fs = std::filesystem;

fs::path make_temp_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("mram_obs_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Same shape as test_shard.cpp's probes: mc_pair makes two runner calls
/// (2000 + 1500 trials), mc_solo one (900). Cells carry 17 digits so a
/// single ULP of instrumentation-induced drift breaks the byte compare.
ScenarioRegistry mc_registry() {
  ScenarioRegistry registry;
  Scenario pair;
  pair.info.name = "mc_pair";
  pair.info.figure = "Test";
  pair.info.summary = "two-call Monte Carlo probe";
  pair.run = [](ScenarioContext& ctx) {
    const auto stats = ctx.runner.run<util::RunningStats>(
        ctx.scaled_trials(2000), ctx.seed,
        [](util::Rng& rng, std::size_t, util::RunningStats& acc) {
          acc.add(rng.normal(1.0, 2.0));
        });
    const auto tail = ctx.runner.run<util::WeightedStats>(
        ctx.scaled_trials(1500), ctx.seed + 1,
        [](util::Rng& rng, std::size_t, util::WeightedStats& acc) {
          const double x = rng.normal();
          acc.add(x > 1.5 ? 1.0 : 0.0, rng.uniform(0.5, 1.5));
        });
    ResultSet out;
    out.add("moments", "scalar moments", {"mean", "stddev", "min", "max"})
        .add_row({Cell(stats.mean(), 17), Cell(stats.stddev(), 17),
                  Cell(stats.min(), 17), Cell(stats.max(), 17)});
    out.add("tail", "weighted tail estimate", {"mean", "rel_err", "ess"})
        .add_row({Cell(tail.mean(), 17), Cell(tail.rel_error(), 17),
                  Cell(tail.effective_samples(), 17)});
    return out;
  };
  registry.add(pair);

  Scenario solo;
  solo.info.name = "mc_solo";
  solo.info.figure = "Test";
  solo.info.summary = "one-call Monte Carlo probe";
  solo.run = [](ScenarioContext& ctx) {
    const auto stats = ctx.runner.run<util::RunningStats>(
        ctx.scaled_trials(900), ctx.seed,
        [](util::Rng& rng, std::size_t, util::RunningStats& acc) {
          acc.add(rng.uniform(-1.0, 1.0));
        });
    ResultSet out;
    out.add("u", "uniform moments", {"mean", "var"})
        .add_row({Cell(stats.mean(), 17), Cell(stats.variance(), 17)});
    return out;
  };
  registry.add(solo);
  return registry;
}

RunCommandOptions base_options(std::vector<std::string> names,
                               unsigned threads) {
  RunCommandOptions opt;
  opt.names = std::move(names);
  opt.format = "csv";
  opt.threads = threads;
  opt.seed = 2026;
  return opt;
}

/// Runs and returns the CSV payload (stdout), asserting success.
std::string run_csv(const ScenarioRegistry& registry,
                    const RunCommandOptions& opt) {
  std::ostringstream out, err;
  EXPECT_EQ(run_scenarios(registry, opt, out, err), 0) << err.str();
  return out.str();
}

const obs::ScenarioMetrics* find_scenario(const obs::MetricsDoc& doc,
                                          const std::string& name) {
  for (const auto& s : doc.scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::uint64_t counter_of(const obs::ScenarioMetrics& s,
                         const std::string& name) {
  const auto it = s.snapshot.counters.find(name);
  return it == s.snapshot.counters.end() ? 0 : it->second;
}

// --- histogram primitives ---------------------------------------------------

TEST(ObsHistogram, PowerOfTwoBuckets) {
  using obs::Histogram;
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Histogram::bucket_of(1023), 9u);
  EXPECT_EQ(Histogram::bucket_of(1024), 10u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 63u);
}

TEST(ObsHistogram, MergeIsExactInAnyOrder) {
  obs::Histogram a, b;
  for (const std::uint64_t v : {3ull, 9ull, 1000ull, 12345ull, 0ull}) {
    a.record(v);
  }
  for (const std::uint64_t v : {7ull, 1ull << 40, 42ull}) {
    b.record(v);
  }
  obs::Histogram ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_EQ(ab.total, ba.total);
  EXPECT_EQ(ab.min, ba.min);
  EXPECT_EQ(ab.max, ba.max);
  EXPECT_EQ(ab.buckets, ba.buckets);
  EXPECT_EQ(ab.count, 8u);
  EXPECT_EQ(ab.min, 0u);
  EXPECT_EQ(ab.max, 1ull << 40);
}

TEST(ObsHistogram, QuantileClampsToObservedRangeAndHandlesEdges) {
  obs::Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  // A single value is exact at every q: the in-bucket interpolation is
  // clamped to [min, max].
  obs::Histogram one;
  one.record(100);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 100.0);

  // q outside (0, 1) returns the matching extreme.
  obs::Histogram two;
  two.record(4);
  two.record(4096);
  EXPECT_DOUBLE_EQ(two.quantile(-1.0), 4.0);
  EXPECT_DOUBLE_EQ(two.quantile(2.0), 4096.0);
}

TEST(ObsHistogram, QuantilesAreMonotoneAndLandInTheRightBucket) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(static_cast<double>(h.min), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max));
  // Uniform 1..1000: the log-linear interpolation puts the median near 500
  // (bucket [256, 512), rank 500 of 1000 -> ~497), not at a bucket edge.
  EXPECT_GT(p50, 400.0);
  EXPECT_LT(p50, 600.0);
  EXPECT_GT(p99, 900.0);
}

// --- chunk-block routing ----------------------------------------------------

TEST(ObsRegistry, ChunkScopeRoutesCountersThroughTheBlock) {
  obs::Registry reg;
  obs::ScopedRegistry guard(&reg);
  obs::MetricsBlock block;
  {
    obs::ChunkScope scope(&block);
    obs::counter_add(obs::Counter::kLlgNoiseBlocks, 5);
    scope.finish(100);
  }
  // Nothing reaches the registry until the caller folds the block.
  EXPECT_TRUE(reg.snapshot().counters.empty());
  reg.merge_block(block);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("llg.noise_blocks"), 5u);
  EXPECT_EQ(snap.counters.at("engine.chunks"), 1u);
  EXPECT_EQ(snap.counters.at("engine.trials"), 100u);
  ASSERT_EQ(snap.histograms.count("engine.chunk_ns"), 1u);
  EXPECT_EQ(snap.histograms.at("engine.chunk_ns").count, 1u);
}

TEST(ObsRegistry, NullBlockAndNoRegistryAreNoOps) {
  obs::ChunkScope scope(nullptr);  // metrics disabled: arms nothing
  obs::counter_add(obs::Counter::kEngineTrials, 7);
  obs::gauge_set(obs::Gauge::kEngineThreads, 3.0);
  obs::hist_record(obs::Hist::kEngineCallNanos, 9);
  obs::series_append("x", 1.0, 2.0);
  obs::tag_kernel(obs::KernelTag::kReadout);  // no block: also a no-op
  scope.finish(7);
  SUCCEED();  // contract: no registry installed, nothing to crash into
}

TEST(ObsRegistry, KernelTagFirstWinsAndConflictDegradesToMixed) {
  obs::MetricsBlock homogeneous;
  {
    obs::ChunkScope scope(&homogeneous);
    obs::tag_kernel(obs::KernelTag::kLlgW8);
    obs::tag_kernel(obs::KernelTag::kLlgW8);  // re-stamping the tag is fine
    scope.finish(3);
  }
  EXPECT_EQ(homogeneous.tag, obs::KernelTag::kLlgW8);

  obs::MetricsBlock mixed;
  {
    obs::ChunkScope scope(&mixed);
    obs::tag_kernel(obs::KernelTag::kReadout);
    obs::tag_kernel(obs::KernelTag::kRare);  // second kernel: degrade
    scope.finish(3);
  }
  EXPECT_EQ(mixed.tag, obs::KernelTag::kMixed);
}

// --- perf counter groups ----------------------------------------------------

TEST(ObsPerf, RegistryFoldsChunkDeltasUnderTheKernelTag) {
  // Synthetic samples exercise the fold exactly like a PMU would feed it,
  // so the attribution machinery is testable on hosts with no PMU at all.
  obs::MetricsBlock block;
  block.tag = obs::KernelTag::kLlgW8;
  block.perf_begin.valid = true;
  block.perf_begin.value = {100, 200, 30, 4, 5, 60};
  block.perf_begin.time_enabled = 1000;
  block.perf_begin.time_running = 1000;
  block.perf_end.valid = true;
  block.perf_end.value = {1100, 2200, 130, 29, 21, 560};
  block.perf_end.time_enabled = 3000;
  block.perf_end.time_running = 2000;

  obs::Registry reg;
  reg.merge_block(block);
  const obs::Snapshot snap = reg.snapshot();
  // Per-tag keys and the cross-tag totals, all exact u64 deltas.
  EXPECT_EQ(snap.counters.at("perf.llg_w8.chunks"), 1u);
  EXPECT_EQ(snap.counters.at("perf.llg_w8.cycles"), 1000u);
  EXPECT_EQ(snap.counters.at("perf.llg_w8.instructions"), 2000u);
  EXPECT_EQ(snap.counters.at("perf.cycles"), 1000u);
  EXPECT_EQ(snap.counters.at("perf.cache_refs"), 100u);
  EXPECT_EQ(snap.counters.at("perf.cache_misses"), 25u);
  EXPECT_EQ(snap.counters.at("perf.branch_misses"), 16u);
  EXPECT_EQ(snap.counters.at("perf.stalled_backend"), 500u);
  EXPECT_EQ(snap.counters.at("perf.chunks"), 1u);
  EXPECT_EQ(snap.counters.at("perf.time_enabled_ns"), 2000u);
  EXPECT_EQ(snap.counters.at("perf.time_running_ns"), 1000u);

  // A chunk without valid bracketing samples contributes no perf keys.
  obs::Registry bare;
  bare.merge_block(obs::MetricsBlock{});
  EXPECT_EQ(bare.snapshot().counters.count("perf.chunks"), 0u);
}

TEST(ObsPerf, ProbeClassifiesUnavailabilityInsteadOfFailing) {
  const obs::PerfStatus st = obs::perf_probe();
  if (st.available) {
    EXPECT_EQ(st.fallback, obs::PerfFallback::kNone);
    EXPECT_EQ(st.error, 0);
  } else {
    // Containers/VMs commonly land here (EPERM via perf_event_paranoid or
    // seccomp; ENOENT with the PMU hidden): a classified reason plus a
    // human-readable detail line, never a throw.
    EXPECT_NE(st.fallback, obs::PerfFallback::kNone);
    EXPECT_FALSE(st.detail.empty());
  }
}

TEST(ObsPerf, SoftwareGroupReadsAreMonotone) {
  // The hardware set needs a PMU, but the group machinery (open, group
  // read layout, enable/reset ioctls) is identical for software events,
  // which work even where the PMU is hidden.
  obs::PerfGroup group;
  const obs::PerfStatus st = group.open_software();
  if (!st.available) {
    GTEST_SKIP() << "perf_event_open unavailable here: " << st.detail;
  }
  ASSERT_TRUE(group.is_open());
  ASSERT_EQ(group.n_events(), 3u);

  obs::PerfSample a, b;
  ASSERT_TRUE(group.read(a));
  EXPECT_TRUE(a.valid);
  volatile double sink = 0.0;  // burn task-clock between the two reads
  for (int i = 0; i < 200000; ++i) sink = sink + 0.5;
  ASSERT_TRUE(group.read(b));
  for (std::size_t e = 0; e < group.n_events(); ++e) {
    EXPECT_GE(b.value[e], a.value[e]) << "event " << e;
  }
  EXPECT_GT(b.value[0], a.value[0]);  // task-clock (the leader) advanced
  EXPECT_GT(b.time_enabled, a.time_enabled);

  group.close();
  EXPECT_FALSE(group.is_open());
  obs::PerfSample after;
  EXPECT_FALSE(group.read(after));
  EXPECT_FALSE(after.valid);
}

// --- derived efficiency report ----------------------------------------------

TEST(ObsDerived, RatiosComeFromFoldedTotals) {
  obs::Snapshot s;
  s.counters["engine.trials"] = 1000;
  s.counters["engine.busy_ns"] = 2'000'000;
  s.counters["perf.cycles"] = 4000;
  s.counters["perf.instructions"] = 8000;
  s.counters["perf.cache_refs"] = 100;
  s.counters["perf.cache_misses"] = 25;
  s.counters["perf.branch_misses"] = 16;
  s.counters["perf.stalled_backend"] = 1000;
  s.counters["perf.time_enabled_ns"] = 1000;
  s.counters["perf.time_running_ns"] = 500;
  s.counters["llg.flops"] = 40000;
  s.counters["perf.llg_w8.cycles"] = 4000;

  const auto d = obs::derived_metrics(s);
  EXPECT_DOUBLE_EQ(d.at("perf.ipc"), 2.0);
  EXPECT_DOUBLE_EQ(d.at("perf.cycles_per_trial"), 4.0);
  EXPECT_DOUBLE_EQ(d.at("perf.cache_miss_rate"), 0.25);
  EXPECT_DOUBLE_EQ(d.at("perf.branch_miss_per_kinsn"), 2.0);
  EXPECT_DOUBLE_EQ(d.at("perf.stalled_backend_frac"), 0.25);
  EXPECT_DOUBLE_EQ(d.at("perf.multiplex_frac"), 0.5);
  EXPECT_DOUBLE_EQ(d.at("llg.est_flops_per_cycle"), 10.0);
  EXPECT_DOUBLE_EQ(d.at("engine.ns_per_trial"), 2000.0);
  EXPECT_DOUBLE_EQ(d.at("engine.trials_per_sec"), 5e5);
}

TEST(ObsDerived, SoftwareFallbackRowsNeedNoHardwareCounters) {
  // This IS the efficiency report on hosts where perf_event_open fails:
  // steady-clock busy time over retired trials, nothing hardware-derived.
  obs::Snapshot s;
  s.counters["engine.trials"] = 10;
  s.counters["engine.busy_ns"] = 100;
  const auto d = obs::derived_metrics(s);
  EXPECT_DOUBLE_EQ(d.at("engine.ns_per_trial"), 10.0);
  EXPECT_EQ(d.count("perf.ipc"), 0u);
  EXPECT_EQ(d.count("llg.est_flops_per_cycle"), 0u);

  // And an empty engine (merge replays, failed scenarios) derives nothing.
  EXPECT_TRUE(obs::derived_metrics(obs::Snapshot{}).empty());
}

// --- JSON parser ------------------------------------------------------------

TEST(ObsJson, ParsesValuesAndKeepsU64Exact) {
  const auto v = obs::json_parse(
      R"({"a": 1, "b": [true, null, "x\nA"], "c": -2.5,
          "big": 9007199254740993, "max": 18446744073709551615})");
  ASSERT_TRUE(v.is(obs::JsonValue::Kind::kObject));
  EXPECT_EQ(v.expect("a", "a").as_u64("a"), 1u);
  const auto& b = v.expect("b", "b");
  ASSERT_EQ(b.array.size(), 3u);
  EXPECT_TRUE(b.array[0].boolean);
  EXPECT_TRUE(b.array[1].is(obs::JsonValue::Kind::kNull));
  EXPECT_EQ(b.array[2].as_string("b[2]"), "x\nA");
  EXPECT_DOUBLE_EQ(v.expect("c", "c").as_number("c"), -2.5);
  EXPECT_FALSE(v.expect("c", "c").is_u64);
  // 2^53 + 1 is not representable as a double; the u64 fast path keeps it.
  EXPECT_TRUE(v.expect("big", "big").is_u64);
  EXPECT_EQ(v.expect("big", "big").as_u64("big"), 9007199254740993ull);
  EXPECT_EQ(v.expect("max", "max").as_u64("max"), ~std::uint64_t{0});
  EXPECT_EQ(v.get("absent"), nullptr);
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(obs::json_parse("{"), util::ConfigError);
  EXPECT_THROW(obs::json_parse("[1,]"), util::ConfigError);
  EXPECT_THROW(obs::json_parse("{'a': 1}"), util::ConfigError);
  EXPECT_THROW(obs::json_parse(R"({"a": 1 "b": 2})"), util::ConfigError);
  EXPECT_THROW(obs::json_parse("1 trailing"), util::ConfigError);
  EXPECT_THROW(obs::json_parse("\"unterminated"), util::ConfigError);
  EXPECT_THROW(obs::json_parse(""), util::ConfigError);
  EXPECT_THROW(
      obs::json_parse("{\"a\": 1}").expect("a", "a").as_string("a"),
      util::ConfigError);
}

// --- metrics document -------------------------------------------------------

obs::MetricsDoc sample_doc() {
  obs::MetricsDoc doc;
  doc.tool = "mram_scenarios";
  doc.threads = 4;
  doc.seed = 2026;
  auto& s = doc.scenario("sample");
  s.snapshot.counters["engine.trials"] = (1ull << 60) + 3;  // beyond 2^53
  s.snapshot.gauges["engine.threads"] = 4.0;
  obs::Histogram h;
  for (const std::uint64_t v : {1ull, 2ull, 3ull, 1ull << 40}) h.record(v);
  s.snapshot.histograms["engine.chunk_ns"] = h;
  // Two series: the emitter once dropped the comma between series entries,
  // which only a multi-series snapshot can catch.
  s.snapshot.series["rare.is.ess"] = {{1.0, 100.5}, {2.0, 200.25}};
  s.snapshot.series["rare.is.rel_error"] = {{1.0, 0.5}};
  return doc;
}

TEST(ObsMetricsDoc, JsonRoundTripIsLossless) {
  const obs::MetricsDoc doc = sample_doc();
  const obs::MetricsDoc back = obs::MetricsDoc::parse(doc.to_json());
  EXPECT_EQ(back.tool, "mram_scenarios");
  EXPECT_EQ(back.threads, 4u);
  EXPECT_EQ(back.seed, 2026u);
  const auto* s = find_scenario(back, "sample");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->snapshot.counters.at("engine.trials"), (1ull << 60) + 3);
  EXPECT_DOUBLE_EQ(s->snapshot.gauges.at("engine.threads"), 4.0);
  const auto& h = s->snapshot.histograms.at("engine.chunk_ns");
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.total, 6 + (1ull << 40));
  EXPECT_EQ(h.min, 1u);
  EXPECT_EQ(h.max, 1ull << 40);
  EXPECT_EQ(h.buckets[0], 1u);  // 1
  EXPECT_EQ(h.buckets[1], 2u);  // 2, 3
  EXPECT_EQ(h.buckets[40], 1u);
  EXPECT_EQ(s->snapshot.series.at("rare.is.ess"),
            (std::vector<std::pair<double, double>>{{1.0, 100.5},
                                                    {2.0, 200.25}}));
  EXPECT_EQ(s->snapshot.series.at("rare.is.rel_error"),
            (std::vector<std::pair<double, double>>{{1.0, 0.5}}));
}

TEST(ObsMetricsDoc, ParseRejectsWrongSchema) {
  EXPECT_THROW(obs::MetricsDoc::parse(
                   R"({"schema": "mram.metrics/999", "scenarios": []})"),
               util::ConfigError);
  EXPECT_THROW(obs::MetricsDoc::parse(R"({"scenarios": []})"),
               util::ConfigError);
}

TEST(ObsMetricsDoc, WritesV2AndStillParsesV1) {
  // /2 is a strict additive superset of /1: the writer stamps /2, and the
  // shard dumps older builds wrote (stamped /1) still load for merging.
  const obs::MetricsDoc doc = sample_doc();
  std::string json = doc.to_json();
  EXPECT_NE(json.find("\"mram.metrics/2\""), std::string::npos);
  const std::string::size_type at = json.find("mram.metrics/2");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, std::string("mram.metrics/2").size(), "mram.metrics/1");
  const obs::MetricsDoc v1 = obs::MetricsDoc::parse(json);
  EXPECT_EQ(v1.tool, "mram_scenarios");
  ASSERT_NE(find_scenario(v1, "sample"), nullptr);
}

TEST(ObsMetricsDoc, HistogramJsonCarriesPercentilesAndDerivedSection) {
  obs::MetricsDoc doc = sample_doc();
  // Give the sample enough state for a derived row (busy time + trials).
  doc.scenario("sample").snapshot.counters["engine.busy_ns"] = 1000;
  const std::string json = doc.to_json();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"derived\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.ns_per_trial\""), std::string::npos);
  // Both sections are recomputed at emission time, never parsed back: the
  // round trip through parse() must still succeed and stay lossless.
  const obs::MetricsDoc back = obs::MetricsDoc::parse(json);
  const auto* s = find_scenario(back, "sample");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->snapshot.histograms.at("engine.chunk_ns").count, 4u);
}

TEST(ObsMetricsDoc, FoldAddsCountersLastWinsGaugesConcatsSeries) {
  obs::Snapshot into, from;
  into.counters["a"] = 1;
  into.gauges["g"] = 1.0;
  into.series["s"] = {{1.0, 1.0}};
  obs::Histogram h1, h2;
  h1.record(8);
  h2.record(16);
  into.histograms["h"] = h1;
  from.counters["a"] = 2;
  from.counters["b"] = 3;
  from.gauges["g"] = 2.0;
  from.series["s"] = {{2.0, 2.0}};
  from.histograms["h"] = h2;
  obs::fold_snapshot(into, from);
  EXPECT_EQ(into.counters.at("a"), 3u);
  EXPECT_EQ(into.counters.at("b"), 3u);
  EXPECT_DOUBLE_EQ(into.gauges.at("g"), 2.0);
  EXPECT_EQ(into.histograms.at("h").count, 2u);
  EXPECT_EQ(into.histograms.at("h").total, 24u);
  ASSERT_EQ(into.series.at("s").size(), 2u);
  EXPECT_DOUBLE_EQ(into.series.at("s")[1].first, 2.0);

  // Document-level fold matches scenarios by name, appends unmatched ones.
  obs::MetricsDoc d1, d2;
  d1.scenario("x").snapshot.counters["a"] = 1;
  d2.scenario("x").snapshot.counters["a"] = 4;
  d2.scenario("y").snapshot.counters["a"] = 9;
  d1.fold(d2);
  ASSERT_EQ(d1.scenarios.size(), 2u);
  EXPECT_EQ(d1.scenario("x").snapshot.counters.at("a"), 5u);
  EXPECT_EQ(d1.scenario("y").snapshot.counters.at("a"), 9u);
}

// --- trace recorder ---------------------------------------------------------

TEST(ObsTrace, EmitsParseableChromeTraceJson) {
  obs::TraceRecorder rec;
  {
    obs::ScopedTrace guard(&rec);
    obs::TraceSpan span("unit", [] { return std::string("hello \"span\""); });
  }
  const auto doc = obs::json_parse(rec.to_json("test_proc"));
  const auto& events = doc.expect("traceEvents", "traceEvents");
  ASSERT_TRUE(events.is(obs::JsonValue::Kind::kArray));
  bool saw_span = false, saw_thread_name = false, saw_process_name = false;
  for (const auto& e : events.array) {
    const std::string& ph = e.expect("ph", "ph").as_string("ph");
    EXPECT_EQ(e.expect("pid", "pid").as_u64("pid"), 1u);
    if (ph == "X" && e.expect("name", "name").as_string("name") ==
                         "hello \"span\"") {
      saw_span = true;
      EXPECT_EQ(e.expect("cat", "cat").as_string("cat"), "unit");
      EXPECT_GE(e.expect("dur", "dur").as_number("dur"), 0.0);
      e.expect("ts", "ts");
      e.expect("tid", "tid");
    }
    if (ph == "M") {
      const std::string& name = e.expect("name", "name").as_string("name");
      if (name == "thread_name") saw_thread_name = true;
      if (name == "process_name") {
        saw_process_name = true;
        EXPECT_EQ(e.expect("args", "args")
                      .expect("name", "args.name")
                      .as_string("args.name"),
                  "test_proc");
      }
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_process_name);
}

TEST(ObsTrace, CapDropsSpansCountsThemAndKeepsTheJsonValid) {
  obs::Registry reg;
  obs::ScopedRegistry rguard(&reg);
  obs::TraceRecorder rec(/*max_spans_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.add_span("unit", "s" + std::to_string(i),
                 static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_EQ(rec.dropped(), 6u);
  // Dropping is loss, never corruption: the document still parses and
  // holds exactly the spans that fit under the cap.
  const auto doc = obs::json_parse(rec.to_json("capped"));
  const auto& events = doc.expect("traceEvents", "traceEvents");
  std::size_t spans = 0;
  for (const auto& e : events.array) {
    if (e.expect("ph", "ph").as_string("ph") == "X") ++spans;
  }
  EXPECT_EQ(spans, 4u);
  // The drops surfaced as a metrics counter (serial context here, so it
  // lands in the registry directly).
  EXPECT_EQ(reg.snapshot().counters.at("trace.spans_dropped"), 6u);
}

TEST(ObsTrace, UncappedRecorderDropsNothing) {
  obs::TraceRecorder rec;
  for (int i = 0; i < 100; ++i) rec.add_span("unit", "s", 0, 1);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(ObsTrace, DisabledPathNeverBuildsTheName) {
  bool called = false;
  {
    obs::TraceSpan span("unit", [&] {
      called = true;
      return std::string("never");
    });
  }
  EXPECT_FALSE(called);
}

// --- progress gate ----------------------------------------------------------

TEST(ObsProgress, NonLivePrintIsAPassThrough) {
  std::ostringstream err;
  obs::Progress p(err, /*live=*/false);
  p.begin_scenario("demo", 0, 1);
  p.print("status line\n");
  p.finish();
  EXPECT_EQ(err.str(), "status line\n");  // no escape codes, no live line
}

TEST(ObsProgress, LiveLineIsClearedAroundPrints) {
  std::ostringstream err;
  {
    obs::Progress p(err, /*live=*/true);
    p.begin_scenario("demo", 0, 3);
    p.print("status line\n");
    p.end_scenario();
    p.finish();
  }
  const std::string s = err.str();
  EXPECT_NE(s.find("[1/3] demo"), std::string::npos);
  EXPECT_NE(s.find("status line\n"), std::string::npos);
  EXPECT_NE(s.find("\r\x1b[K"), std::string::npos);
  // The verbatim payload is never broken by the live line: the clear
  // sequence always precedes it on a fresh line start.
  EXPECT_NE(s.find("\x1b[Kstatus line\n"), std::string::npos);
}

std::size_t count_redraws(const std::string& s) {
  std::size_t n = 0;
  for (std::string::size_type at = s.find("\r\x1b[K");
       at != std::string::npos; at = s.find("\r\x1b[K", at + 1)) {
    ++n;
  }
  return n;
}

TEST(ObsProgress, RedrawThrottleCoalescesRapidTicksButCountsAllOfThem) {
  std::ostringstream err;
  obs::Progress p(err, /*live=*/true);
  p.begin_scenario("throttle", 0, 1);
  p.begin_call(100000);
  const std::size_t baseline = count_redraws(err.str());

  // 50k ticks land well inside one ~8 Hz redraw interval: at most one of
  // them can win the CAS on the redraw stamp (slack for a slow machine).
  for (int i = 0; i < 50000; ++i) p.add_trials(1);
  EXPECT_LE(count_redraws(err.str()) - baseline, 1u);
  // Every tick counted even though almost none drew.
  EXPECT_EQ(p.trials_done(), 50000u);

  // Once the interval has elapsed, the next tick redraws (ETA included:
  // enough time has passed for the rate estimate to print).
  std::this_thread::sleep_for(std::chrono::milliseconds(130));
  const std::size_t before = count_redraws(err.str());
  p.add_trials(1);
  EXPECT_EQ(count_redraws(err.str()), before + 1);
  EXPECT_EQ(p.trials_done(), 50001u);
  EXPECT_NE(err.str().find("trials/s"), std::string::npos);
  p.finish();
}

TEST(ObsProgress, ShardModeAnnouncesTheSliceNotTheFullCall) {
  std::ostringstream err;
  obs::Progress progress(err, /*live=*/false);
  obs::ScopedProgress guard(&progress);
  progress.begin_scenario("probe", 0, 1);

  eng::RunnerConfig cfg;
  cfg.threads = 2;
  eng::MonteCarloRunner runner(cfg);
  const auto trial = [](util::Rng& rng, std::size_t,
                        util::RunningStats& acc) { acc.add(rng.normal()); };
  constexpr std::uint64_t kTrials = 1000;

  // Plain run: the bar covers the whole call and ends exactly full.
  runner.run<util::RunningStats>(kTrials, 1, trial);
  EXPECT_EQ(progress.trials_total(), kTrials);
  EXPECT_EQ(progress.trials_done(), kTrials);

  // Shard runs: each announces only its own chunk slice (the ETA is then
  // this shard's, not a 4x overestimate), ends full, and the slices cover
  // the call exactly.
  const fs::path dir = make_temp_dir("progress_shard");
  std::uint64_t announced = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    eng::ShardIo io;
    io.mode = eng::ShardMode::kShard;
    io.shard = eng::ShardSpec{s, 4};
    io.dir = (dir / std::to_string(s)).string();
    fs::create_directories(io.dir);
    runner.set_shard_io(io);
    runner.run<util::RunningStats>(kTrials, 1, trial);
    EXPECT_LT(progress.trials_total(), kTrials) << "shard " << s;
    EXPECT_EQ(progress.trials_done(), progress.trials_total())
        << "shard " << s;
    announced += progress.trials_total();
  }
  EXPECT_EQ(announced, kTrials);
  progress.end_scenario();
}

// --- integration: instrumentation cannot perturb results --------------------

TEST(ObsRun, MetricsTraceProgressKeepCsvByteIdentical) {
  const auto registry = mc_registry();
  const std::vector<std::string> names{"mc_pair", "mc_solo"};
  const fs::path dir = make_temp_dir("identity");
  const std::string reference = run_csv(registry, base_options(names, 1));
  ASSERT_NE(reference.find("# mc_pair/moments"), std::string::npos);

  for (const unsigned threads : {1u, 4u}) {
    auto opt = base_options(names, threads);
    opt.metrics_file =
        (dir / ("metrics_t" + std::to_string(threads) + ".json")).string();
    opt.trace_file =
        (dir / ("trace_t" + std::to_string(threads) + ".json")).string();
    opt.progress = true;
    opt.perf = true;  // chunk-boundary hardware sampling (or its fallback)
    std::ostringstream out, err;
    ASSERT_EQ(run_scenarios(registry, opt, out, err), 0) << err.str();
    EXPECT_EQ(out.str(), reference) << "threads=" << threads;
    // The live line animated on err but never leaked into the payload.
    EXPECT_NE(err.str().find("\x1b[K"), std::string::npos);
    EXPECT_NE(err.str().find("[1/2] mc_pair"), std::string::npos);
  }
}

TEST(ObsRun, PerfRunReportsHardwareCountersOrTheDocumentedFallback) {
  const auto registry = mc_registry();
  const fs::path dir = make_temp_dir("perfrun");
  auto opt = base_options({"mc_pair"}, 2);
  opt.metrics_file = (dir / "metrics.json").string();
  opt.perf = true;
  std::ostringstream out, err;
  // Unavailability is a reported state, never a failure: exit 0 either way.
  ASSERT_EQ(run_scenarios(registry, opt, out, err), 0) << err.str();

  const std::string raw = slurp(opt.metrics_file);
  EXPECT_NE(raw.find("\"mram.metrics/2\""), std::string::npos);
  EXPECT_NE(raw.find("\"p50\""), std::string::npos);
  EXPECT_NE(raw.find("\"derived\""), std::string::npos);
  // The software efficiency rows are derivable on every host.
  EXPECT_NE(raw.find("\"engine.ns_per_trial\""), std::string::npos);
  // And the summary gained the chunk-latency percentile columns.
  EXPECT_NE(err.str().find("chunk p50"), std::string::npos);

  const auto doc = obs::MetricsDoc::load(opt.metrics_file);
  const auto* s = find_scenario(doc, "mc_pair");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->snapshot.gauges.count("perf.active"), 1u);
  if (s->snapshot.gauges.at("perf.active") == 1.0) {
    // Live PMU: real cycle counts and a hardware-derived IPC row.
    EXPECT_GT(counter_of(*s, "perf.cycles"), 0u);
    EXPECT_GT(counter_of(*s, "perf.chunks"), 0u);
    EXPECT_NE(raw.find("\"perf.ipc\""), std::string::npos);
  } else {
    // Degraded host (container/VM): the reason is recorded as a gauge and
    // the console said why, but nothing failed.
    EXPECT_GT(s->snapshot.gauges.at("perf.fallback_reason"), 0.0);
    EXPECT_NE(err.str().find("hardware counters unavailable"),
              std::string::npos);
    EXPECT_EQ(counter_of(*s, "perf.chunks"), 0u);
  }
}

TEST(ObsRun, MetricsDashStreamsOneParseableDocumentToStdout) {
  const auto registry = mc_registry();
  const fs::path dir = make_temp_dir("metrics_dash");
  auto opt = base_options({"mc_solo"}, 2);
  opt.out_dir = (dir / "csv").string();  // results go to files...
  opt.metrics_file = "-";                // ...stdout is the metrics JSON
  std::ostringstream out, err;
  ASSERT_EQ(run_scenarios(registry, opt, out, err), 0) << err.str();
  // The whole stdout payload parses as one document -- pipeable into
  // json.tool with no temp file.
  const auto doc = obs::MetricsDoc::parse(out.str());
  ASSERT_NE(find_scenario(doc, "mc_solo"), nullptr);
  // The one-line scenario status moved to the stderr gate to keep it so.
  EXPECT_NE(err.str().find("ok   mc_solo"), std::string::npos);
}

TEST(ObsRun, TraceDashStreamsTheTraceToStdout) {
  const auto registry = mc_registry();
  const fs::path dir = make_temp_dir("trace_dash");
  auto opt = base_options({"mc_solo"}, 2);
  opt.out_dir = (dir / "csv").string();
  opt.trace_file = "-";
  std::ostringstream out, err;
  ASSERT_EQ(run_scenarios(registry, opt, out, err), 0) << err.str();
  const auto doc = obs::json_parse(out.str());
  EXPECT_TRUE(doc.expect("traceEvents", "traceEvents")
                  .is(obs::JsonValue::Kind::kArray));
}

TEST(ObsRun, PerfWithoutMetricsIsAConfigError) {
  const auto registry = mc_registry();
  auto opt = base_options({"mc_solo"}, 1);
  opt.perf = true;  // no metrics_file: nowhere for the efficiency report
  std::ostringstream out, err;
  EXPECT_THROW(run_scenarios(registry, opt, out, err), util::ConfigError);
}

TEST(ObsRun, MetricsFileMatchesTheSchemaAndTheTrialCounts) {
  const auto registry = mc_registry();
  const fs::path dir = make_temp_dir("metrics");
  auto opt = base_options({"mc_pair", "mc_solo"}, 4);
  opt.metrics_file = (dir / "metrics.json").string();
  run_csv(registry, opt);

  const auto doc = obs::MetricsDoc::load(opt.metrics_file);
  EXPECT_EQ(doc.tool, "mram_scenarios");
  EXPECT_EQ(doc.threads, 4u);
  EXPECT_EQ(doc.seed, 2026u);
  const auto* pair = find_scenario(doc, "mc_pair");
  const auto* solo = find_scenario(doc, "mc_solo");
  ASSERT_NE(pair, nullptr);
  ASSERT_NE(solo, nullptr);
  // Extensive counters are exact regardless of the thread count.
  EXPECT_EQ(counter_of(*pair, "engine.trials"), 3500u);
  EXPECT_EQ(counter_of(*pair, "engine.calls"), 2u);
  EXPECT_EQ(counter_of(*solo, "engine.trials"), 900u);
  EXPECT_EQ(counter_of(*solo, "engine.calls"), 1u);
  // Per-chunk wall times fold one histogram entry per chunk.
  const auto& chunk_hist = pair->snapshot.histograms.at("engine.chunk_ns");
  EXPECT_EQ(chunk_hist.count, counter_of(*pair, "engine.chunks"));
  EXPECT_GT(counter_of(*pair, "engine.busy_ns"), 0u);
  EXPECT_DOUBLE_EQ(pair->snapshot.gauges.at("engine.threads"), 4.0);
}

TEST(ObsRun, TraceFileHoldsScenarioAndChunkSpans) {
  const auto registry = mc_registry();
  const fs::path dir = make_temp_dir("trace");
  auto opt = base_options({"mc_pair"}, 2);
  opt.trace_file = (dir / "trace.json").string();
  run_csv(registry, opt);

  const auto doc = obs::json_parse(slurp(opt.trace_file));
  const auto& events = doc.expect("traceEvents", "traceEvents");
  ASSERT_TRUE(events.is(obs::JsonValue::Kind::kArray));
  bool saw_scenario = false, saw_chunk = false, saw_process = false;
  for (const auto& e : events.array) {
    const std::string& ph = e.expect("ph", "ph").as_string("ph");
    if (ph == "X") {
      const std::string& cat = e.expect("cat", "cat").as_string("cat");
      const std::string& name = e.expect("name", "name").as_string("name");
      if (cat == "scenario" && name == "mc_pair") saw_scenario = true;
      if (cat == "engine" && name.rfind("chunk ", 0) == 0) saw_chunk = true;
    } else if (ph == "M" &&
               e.expect("name", "name").as_string("name") == "process_name") {
      saw_process =
          e.expect("args", "args").expect("name", "n").as_string("n") ==
          "mram_scenarios";
    }
  }
  EXPECT_TRUE(saw_scenario);
  EXPECT_TRUE(saw_chunk);
  EXPECT_TRUE(saw_process);
}

TEST(ObsRun, QuietSuppressesTheSummaryButNotTheExitCode) {
  const auto registry = mc_registry();
  {
    auto opt = base_options({"mc_solo"}, 1);
    std::ostringstream out, err;
    ASSERT_EQ(run_scenarios(registry, opt, out, err), 0);
    EXPECT_NE(err.str().find("run summary"), std::string::npos);
  }
  {
    auto opt = base_options({"mc_solo"}, 1);
    opt.quiet = true;
    std::ostringstream out, err;
    ASSERT_EQ(run_scenarios(registry, opt, out, err), 0);
    EXPECT_EQ(err.str(), "");  // success is silent on stderr
    EXPECT_NE(out.str().find("# mc_solo/u"), std::string::npos);
  }
  {
    auto opt = base_options({"missing"}, 1);
    opt.quiet = true;
    std::ostringstream out, err;
    EXPECT_THROW(run_scenarios(registry, opt, out, err), util::ConfigError);
  }
}

TEST(ObsRun, MetricsInWithoutMetricsFileIsAConfigError) {
  const auto registry = mc_registry();
  auto opt = base_options({"mc_solo"}, 1);
  opt.metrics_in = {"shard.json"};
  std::ostringstream out, err;
  EXPECT_THROW(run_scenarios(registry, opt, out, err), util::ConfigError);
}

TEST(ObsRun, MergeFoldsShardMetricsIntoOneDocument) {
  const auto registry = mc_registry();
  const std::vector<std::string> names{"mc_pair", "mc_solo"};
  const std::string reference = run_csv(registry, base_options(names, 1));
  const fs::path dir = make_temp_dir("fold");

  std::vector<std::string> shard_metrics;
  for (std::size_t i = 0; i < 2; ++i) {
    auto opt = base_options(names, 2);
    opt.shard = eng::ShardSpec{i, 2};
    opt.partials_dir = (dir / "partials").string();
    opt.metrics_file =
        (dir / ("metrics_shard" + std::to_string(i) + ".json")).string();
    std::ostringstream out, err;
    ASSERT_EQ(run_scenarios(registry, opt, out, err), 0) << err.str();
    shard_metrics.push_back(opt.metrics_file);
  }
  // Each shard recorded only its own slice of the trials.
  for (const auto& path : shard_metrics) {
    const auto doc = obs::MetricsDoc::load(path);
    const auto* pair = find_scenario(doc, "mc_pair");
    ASSERT_NE(pair, nullptr);
    EXPECT_LT(counter_of(*pair, "engine.trials"), 3500u);
    EXPECT_GT(counter_of(*pair, "shard.dump_calls"), 0u);
  }

  auto merge_opt = base_options(names, 1);
  merge_opt.merge = true;
  merge_opt.partials_dir = (dir / "partials").string();
  merge_opt.metrics_file = (dir / "metrics_merged.json").string();
  merge_opt.metrics_in = shard_metrics;
  std::ostringstream out, err;
  ASSERT_EQ(run_scenarios(registry, merge_opt, out, err), 0) << err.str();
  EXPECT_EQ(out.str(), reference);  // metrics folding never touches results

  const auto merged = obs::MetricsDoc::load(merge_opt.metrics_file);
  EXPECT_EQ(merged.tool, "mram_merge");
  const auto* pair = find_scenario(merged, "mc_pair");
  const auto* solo = find_scenario(merged, "mc_solo");
  ASSERT_NE(pair, nullptr);
  ASSERT_NE(solo, nullptr);
  // The fold restores the full-process totals: the merge replay executes no
  // trials itself, and the two shard slices add back up exactly.
  EXPECT_EQ(counter_of(*pair, "engine.trials"), 3500u);
  EXPECT_EQ(counter_of(*solo, "engine.trials"), 900u);
  // The merge run contributes its own replay-side counters on top.
  EXPECT_EQ(counter_of(*pair, "shard.merge_calls"), 2u);
  EXPECT_EQ(counter_of(*solo, "shard.merge_calls"), 1u);
  EXPECT_GT(counter_of(*pair, "shard.dump_calls"), 0u);  // from the shards
}

}  // namespace
}  // namespace mram::scn
