// Tests for src/scenario: registry lookup/describe, grid expansion edge
// cases, CSV/JSON writer round-trips, and serial-vs-parallel bit identity
// of seeded scenario runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/result_sink.h"
#include "scenario/run_command.h"
#include "scenario/sweep.h"
#include "util/csv.h"
#include "util/error.h"

namespace mram::scn {
namespace {

// --- registry ---------------------------------------------------------------

TEST(ScenarioRegistry, GlobalHoldsTheBuiltinCatalog) {
  const auto& registry = ScenarioRegistry::global();
  EXPECT_GE(registry.size(), 15u);
  const auto names = registry.names();
  EXPECT_EQ(names.size(), registry.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  // The flagship figures are present.
  for (const char* name : {"fig2a_rh_loop", "fig2b_intra_vs_ecd", "fig5_tw",
                           "wer_pulse_width", "yield_vs_pitch"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(ScenarioRegistry, DescribeMetadataIsComplete) {
  const auto& registry = ScenarioRegistry::global();
  for (const auto& name : registry.names()) {
    const auto& info = registry.at(name).info;
    EXPECT_EQ(info.name, name);
    EXPECT_FALSE(info.figure.empty()) << name;
    EXPECT_FALSE(info.summary.empty()) << name;
    EXPECT_FALSE(info.details.empty()) << name;
    EXPECT_FALSE(info.params.empty()) << name << " has no parameter schema";
  }
}

TEST(ScenarioRegistry, LookupErrors) {
  const auto& registry = ScenarioRegistry::global();
  EXPECT_EQ(registry.find("no_such_scenario"), nullptr);
  EXPECT_THROW(registry.at("no_such_scenario"), util::ConfigError);
}

TEST(ScenarioRegistry, RejectsDuplicatesAndInvalid) {
  ScenarioRegistry registry;
  Scenario s;
  s.info.name = "dup";
  s.run = [](ScenarioContext&) { return ResultSet{}; };
  registry.add(s);
  EXPECT_THROW(registry.add(s), util::ConfigError);

  Scenario unnamed;
  unnamed.run = s.run;
  EXPECT_THROW(registry.add(unnamed), util::ConfigError);

  Scenario runless;
  runless.info.name = "runless";
  EXPECT_THROW(registry.add(runless), util::ConfigError);
}

TEST(ScenarioRegistry, ReadoutScenariosAreRegistered) {
  const auto& registry = ScenarioRegistry::global();
  for (const char* name :
       {"rer_vs_read_voltage", "rer_vs_tmr", "sense_margin_ir_drop",
        "read_disturb_vs_pulse", "read_retention_word", "march_read_path"}) {
    ASSERT_NE(registry.find(name), nullptr) << name;
    EXPECT_EQ(registry.at(name).info.figure, "Readout") << name;
  }
}

TEST(ScenarioRegistry, FiltersByFigureTag) {
  const auto& registry = ScenarioRegistry::global();
  // Case-insensitive substring: "readout", "Readout" and "READ" all match.
  const auto lower = registry.names_by_figure("readout");
  EXPECT_EQ(lower.size(), 6u);
  EXPECT_EQ(registry.names_by_figure("Readout"), lower);
  EXPECT_GE(registry.names_by_figure("READ").size(), lower.size());
  for (const auto& name : lower) {
    EXPECT_EQ(registry.at(name).info.figure, "Readout") << name;
  }
  // Unmatched tags select nothing; the empty tag selects everything.
  EXPECT_TRUE(registry.names_by_figure("no_such_figure").empty());
  EXPECT_EQ(registry.names_by_figure("").size(), registry.size());
}

// --- grid expansion ---------------------------------------------------------

TEST(Grid, StepAxisHasExactCount) {
  // The former floating-point loop `for (vp = 0.70; vp <= 1.205; vp += 0.05)`
  // as an integer-indexed axis: exactly 11 points, each computed by index
  // multiplication, on every platform.
  const auto axis = GridAxis::step("vp", 0.70, 0.05, 11);
  ASSERT_EQ(axis.size(), 11u);
  EXPECT_DOUBLE_EQ(axis.values.front(), 0.70);
  EXPECT_DOUBLE_EQ(axis.values.back(), 0.70 + 10 * 0.05);
  for (std::size_t i = 0; i < axis.size(); ++i) {
    EXPECT_DOUBLE_EQ(axis.values[i], 0.70 + static_cast<double>(i) * 0.05);
  }
}

TEST(Grid, LinspaceEndpointsAreExact) {
  const auto axis = GridAxis::linspace("x", -1.5, 4.5, 7);
  ASSERT_EQ(axis.size(), 7u);
  EXPECT_DOUBLE_EQ(axis.values.front(), -1.5);
  EXPECT_DOUBLE_EQ(axis.values.back(), 4.5);
}

TEST(Grid, SinglePointAxes) {
  EXPECT_EQ(GridAxis::linspace("x", 3.0, 9.0, 1).values,
            std::vector<double>{3.0});
  EXPECT_EQ(GridAxis::step("x", 2.0, 0.5, 1).values,
            std::vector<double>{2.0});
  const Grid grid(GridAxis::list("x", {42.0}));
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_DOUBLE_EQ(grid.point(0).x, 42.0);
}

TEST(Grid, EmptyRangeYieldsEmptyGrid) {
  EXPECT_EQ(GridAxis::step("x", 0.0, 1.0, 0).size(), 0u);
  EXPECT_EQ(GridAxis::linspace("x", 0.0, 1.0, 0).size(), 0u);

  const Grid empty(GridAxis::list("x", {}));
  EXPECT_EQ(empty.size(), 0u);
  // A 2-D grid with one empty axis is empty as a whole.
  const Grid half_empty(GridAxis::list("x", {1.0, 2.0}),
                        GridAxis::list("y", {}));
  EXPECT_EQ(half_empty.size(), 0u);

  // Sweeping an empty grid produces a well-formed table with no rows.
  eng::MonteCarloRunner runner(eng::RunnerConfig{1, 64});
  SweepDriver driver(runner, 1);
  const auto table = driver.sweep(
      "empty", "empty", {"x"}, empty,
      [](const SweepPoint&) -> std::vector<Cell> { return {Cell(0.0)}; });
  EXPECT_EQ(table.rows.size(), 0u);
  EXPECT_EQ(table.columns.size(), 1u);
}

TEST(Grid, TwoDimensionalRowMajorOrder) {
  const Grid grid(GridAxis::list("outer", {10.0, 20.0}),
                  GridAxis::list("inner", {1.0, 2.0, 3.0}));
  ASSERT_EQ(grid.size(), 6u);
  ASSERT_EQ(grid.dims(), 2u);
  EXPECT_DOUBLE_EQ(grid.point(0).x, 10.0);
  EXPECT_DOUBLE_EQ(grid.point(0).y, 1.0);
  EXPECT_DOUBLE_EQ(grid.point(2).y, 3.0);
  EXPECT_DOUBLE_EQ(grid.point(3).x, 20.0);
  EXPECT_DOUBLE_EQ(grid.point(3).y, 1.0);
  EXPECT_DOUBLE_EQ(grid.point(5).y, 3.0);
  EXPECT_THROW(grid.point(6), util::ContractViolation);
}

TEST(SweepDriver, PointSeedsAreDeterministicAndDistinct) {
  eng::MonteCarloRunner runner(eng::RunnerConfig{1, 64});
  const SweepDriver a(runner, 99), b(runner, 99), c(runner, 100);
  EXPECT_EQ(a.point_seed(0), b.point_seed(0));
  EXPECT_EQ(a.point_seed(7), b.point_seed(7));
  EXPECT_NE(a.point_seed(0), a.point_seed(1));
  EXPECT_NE(a.point_seed(0), c.point_seed(0));
}

// --- result tables and sinks ------------------------------------------------

ResultSet numeric_results() {
  ResultSet results;
  auto& t = results.add("series", "a numeric series", {"x", "y", "z"});
  t.add_row({Cell(1.0, 4), Cell(-2.5, 4), Cell(0.125, 4)});
  t.add_row({Cell(2.0, 4), Cell(3.75, 4), Cell(-0.0625, 4)});
  results.notes.push_back("note");
  return results;
}

TEST(ResultTable, RowWidthIsChecked) {
  ResultTable t;
  t.name = "t";
  t.columns = {"a", "b"};
  EXPECT_THROW(t.add_row({Cell(1.0)}), util::ConfigError);
}

TEST(ResultSink, CsvRoundTripsThroughTheRepoParser) {
  const auto results = numeric_results();
  const auto doc = util::parse_numeric_csv(results.tables[0].to_csv());
  ASSERT_EQ(doc.header.size(), 3u);
  EXPECT_EQ(doc.header[1], "y");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.rows[0][1], -2.5);
  EXPECT_DOUBLE_EQ(doc.rows[1][2], -0.0625);
}

TEST(ResultSink, CsvQuotesSpecialCells) {
  ResultSet results;
  auto& t = results.add("q", "quoting", {"name", "value"});
  t.add_row({Cell("comma, inside"), Cell(1.0, 2)});
  t.add_row({Cell("quote \" inside"), Cell(2.0, 2)});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"comma, inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote \"\" inside\""), std::string::npos);
}

TEST(ResultSink, JsonEscapesAndTypesCells) {
  const std::string escaped = json_escape("a\"b\\c\nd\te");
  EXPECT_EQ(escaped, "a\\\"b\\\\c\\nd\\te");

  ResultSet results;
  auto& t = results.add("mixed", "mixed cells", {"label", "v"});
  t.add_row({Cell("say \"hi\""), Cell(2.5, 2)});
  const ScenarioInfo info{"unit", "Test", "summary", "details", {}};
  const RunMeta meta{7, 2, 1.0};
  const std::string doc = to_json(info, meta, results);

  // Numeric cells are bare JSON numbers; strings are escaped and quoted.
  EXPECT_NE(doc.find("[\"say \\\"hi\\\"\", 2.50]"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"scenario\": \"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(doc.find("\"threads\": 2"), std::string::npos);

  // Balanced braces/brackets (a cheap structural sanity check).
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
}

TEST(ResultSink, StreamSinksEmitEveryTable) {
  const auto results = numeric_results();
  const ScenarioInfo info{"unit", "Test", "summary", "details", {}};
  const RunMeta meta{1, 1, 1.0};

  std::ostringstream text;
  TextSink(text).write(info, meta, results);
  EXPECT_NE(text.str().find("a numeric series"), std::string::npos);
  EXPECT_NE(text.str().find("note"), std::string::npos);

  std::ostringstream csv;
  CsvSink(csv).write(info, meta, results);
  EXPECT_NE(csv.str().find("# unit/series"), std::string::npos);
  EXPECT_NE(csv.str().find("x,y,z"), std::string::npos);

  EXPECT_THROW(make_sink("yaml", std::cout, ""), util::ConfigError);
}

// --- scaled trials ----------------------------------------------------------

TEST(ScenarioContext, ScaledTrialsFloorsAtOne) {
  eng::MonteCarloRunner runner(eng::RunnerConfig{1, 64});
  ScenarioContext ctx{runner};
  EXPECT_EQ(ctx.scaled_trials(100), 100u);
  ctx.trial_scale = 0.25;
  EXPECT_EQ(ctx.scaled_trials(100), 25u);
  ctx.trial_scale = 1e-9;
  EXPECT_EQ(ctx.scaled_trials(100), 1u);
}

// --- serial vs parallel bit identity ----------------------------------------

std::string run_to_csv(const std::string& name, unsigned threads,
                       std::uint64_t seed) {
  eng::RunnerConfig cfg;
  cfg.threads = threads;
  eng::MonteCarloRunner runner(cfg);
  ScenarioContext ctx{runner};
  ctx.seed = seed;
  ctx.trial_scale = 0.25;  // keep the stochastic scenarios test-sized
  const auto& scenario = ScenarioRegistry::global().at(name);
  const ResultSet results = scenario.run(ctx);
  std::string csv;
  for (const auto& table : results.tables) csv += table.to_csv();
  return csv;
}

TEST(ScenarioDeterminism, SeededRunsAreBitIdenticalAcrossThreadCounts) {
  // The acceptance contract: a seeded scenario emits byte-identical CSV on
  // 1 thread and on 4. Covers the heaviest runner users, including the
  // batched stochastic-LLG read-disturb path.
  for (const char* name : {"wer_pulse_width", "fig2b_intra_vs_ecd",
                           "rer_vs_read_voltage", "read_disturb_vs_pulse"}) {
    const std::string serial = run_to_csv(name, 1, 31337);
    const std::string parallel = run_to_csv(name, 4, 31337);
    EXPECT_EQ(serial, parallel) << name;
    EXPECT_FALSE(serial.empty()) << name;
  }
}

TEST(ScenarioDeterminism, DifferentSeedsChangeStochasticResults) {
  const std::string a = run_to_csv("wer_pulse_width", 2, 1);
  const std::string b = run_to_csv("wer_pulse_width", 2, 2);
  EXPECT_NE(a, b);
}

// --- run command (the CLI's run pipeline) ------------------------------------

/// Lines of `text` that render a table row holding `cell` (the aligned-text
/// sink pads cells, so match " cell |" inside a '|'-framed line).
std::size_t table_rows_mentioning(const std::string& text,
                                  const std::string& cell) {
  std::size_t rows = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    rows += !line.empty() && line.front() == '|' &&
            line.find(" " + cell + " |") != std::string::npos;
  }
  return rows;
}

ScenarioRegistry tiny_registry() {
  ScenarioRegistry registry;
  auto make = [](const char* name) {
    Scenario s;
    s.info.name = name;
    s.info.figure = "Test";
    s.info.summary = "tiny";
    s.run = [](ScenarioContext&) {
      ResultSet out;
      out.add("t", "tiny table", {"x"}).add_row({Cell(1.0, 1)});
      return out;
    };
    return s;
  };
  registry.add(make("tiny_alpha"));
  registry.add(make("tiny_beta"));
  Scenario failing;
  failing.info.name = "tiny_failing";
  failing.info.figure = "Test";
  failing.info.summary = "always throws";
  failing.run = [](ScenarioContext&) -> ResultSet {
    throw util::ConfigError("deliberate test failure");
  };
  registry.add(failing);
  return registry;
}

TEST(RunCommand, SummaryTableHasOneRowPerScenario) {
  // The stderr per-scenario timing table: parses as one row per scenario
  // with its status.
  const auto registry = tiny_registry();
  RunCommandOptions opt;
  opt.names = {"tiny_alpha", "tiny_beta"};
  opt.format = "csv";
  std::ostringstream out, err;
  EXPECT_EQ(run_scenarios(registry, opt, out, err), 0);
  const std::string log = err.str();
  EXPECT_NE(log.find("run summary"), std::string::npos);
  EXPECT_NE(log.find("scenario |"), std::string::npos);
  EXPECT_NE(log.find("wall (s)"), std::string::npos);
  EXPECT_EQ(table_rows_mentioning(log, "tiny_alpha"), 1u);
  EXPECT_EQ(table_rows_mentioning(log, "tiny_beta"), 1u);
  // Results (CSV with per-table comment separators) went to `out`,
  // untouched by the summary.
  EXPECT_NE(out.str().find("# tiny_alpha/t"), std::string::npos);
  EXPECT_EQ(out.str().find("run summary"), std::string::npos);
}

TEST(RunCommand, SummaryReportsEstimatorQualityColumns) {
  // Scenarios that fill ResultSet::effective_trials / rel_error get them
  // rendered in the stderr summary; the others show "-" placeholders.
  ScenarioRegistry registry = tiny_registry();
  Scenario deep;
  deep.info.name = "tiny_deep";
  deep.info.figure = "Test";
  deep.info.summary = "reports estimator quality";
  deep.run = [](ScenarioContext&) {
    ResultSet out;
    out.add("t", "tiny table", {"x"}).add_row({Cell(1.0, 1)});
    out.effective_trials = 2.5e9;
    out.rel_error = 0.073;
    return out;
  };
  registry.add(deep);

  RunCommandOptions opt;
  opt.names = {"tiny_alpha", "tiny_deep"};
  opt.format = "csv";
  std::ostringstream out, err;
  EXPECT_EQ(run_scenarios(registry, opt, out, err), 0);
  const std::string log = err.str();
  EXPECT_NE(log.find("eff. trials"), std::string::npos);
  EXPECT_NE(log.find("rel err"), std::string::npos);
  EXPECT_NE(log.find("2.50e+09"), std::string::npos);
  EXPECT_NE(log.find("7.30e-02"), std::string::npos);
  EXPECT_EQ(table_rows_mentioning(log, "-"), 1u);  // only tiny_alpha's row
}

TEST(RunCommand, SingleScenarioStillPrintsTheSummary) {
  // Regression: the summary used to be gated on names.size() > 1, silently
  // dropping eff. trials / rel err / wall-clock for single-scenario runs --
  // the common case when iterating on one scenario.
  const auto registry = tiny_registry();
  RunCommandOptions opt;
  opt.names = {"tiny_alpha"};
  opt.format = "csv";
  std::ostringstream out, err;
  EXPECT_EQ(run_scenarios(registry, opt, out, err), 0);
  const std::string log = err.str();
  EXPECT_NE(log.find("run summary"), std::string::npos);
  EXPECT_EQ(table_rows_mentioning(log, "tiny_alpha"), 1u);
}

TEST(RunCommand, FailuresSetTheExitCodeAndSummaryStatus) {
  const auto registry = tiny_registry();
  RunCommandOptions opt;
  opt.names = {"tiny_alpha", "tiny_failing"};
  opt.format = "csv";
  std::ostringstream out, err;
  EXPECT_EQ(run_scenarios(registry, opt, out, err), 1);
  const std::string log = err.str();
  EXPECT_NE(log.find("FAIL tiny_failing: deliberate test failure"),
            std::string::npos);
  EXPECT_EQ(table_rows_mentioning(log, "tiny_failing"), 1u);
  EXPECT_NE(log.find("1 of 2 scenarios failed"), std::string::npos);
}

TEST(RunCommand, EmptySelectionIsAUsageError) {
  const auto registry = tiny_registry();
  RunCommandOptions opt;
  std::ostringstream out, err;
  EXPECT_EQ(run_scenarios(registry, opt, out, err), 2);
  EXPECT_NE(err.str().find("no scenarios selected"), std::string::npos);
}

}  // namespace
}  // namespace mram::scn
