// Tests for the unified Monte Carlo engine: static-dispatch solver policies
// (observed convergence orders, adaptive error control), the cached coupling
// kernel (agreement with the direct dipole sum), per-trial RNG streams, the
// thread pool, and the determinism contract of MonteCarloRunner (bit-identical
// results across thread counts and chunk sizes for a fixed seed).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "array/array_field.h"
#include "device/mtj_device.h"
#include "dynamics/llg.h"
#include "dynamics/switching_sim.h"
#include "engine/monte_carlo.h"
#include "engine/thread_pool.h"
#include "magnetics/disk_source.h"
#include "mram/retention.h"
#include "mram/wer.h"
#include "numerics/solvers.h"
#include "util/error.h"
#include "util/stats.h"

namespace mram {
namespace {

using num::Vec3;

// --- solver policies: observed convergence order ----------------------------

double observed_order(double coarse_error, double fine_error) {
  return std::log2(coarse_error / fine_error);
}

TEST(Solvers, Rk4ObservedFourthOrder) {
  // dm/dt = -m, m(1) = m0 * exp(-1).
  auto f = [](double, const Vec3& m) { return -m; };
  auto error_for = [&](double dt) {
    const Vec3 m = num::integrate_fixed<num::Rk4Solver>(f, {1.0, 0.0, 0.0},
                                                        0.0, 1.0, dt);
    return std::abs(m.x - std::exp(-1.0));
  };
  const double p = observed_order(error_for(0.1), error_for(0.05));
  EXPECT_NEAR(p, 4.0, 0.3);
}

TEST(Solvers, HeunObservedSecondOrder) {
  auto f = [](double, const Vec3& m) { return -m; };
  auto error_for = [&](double dt) {
    const Vec3 m = num::integrate_fixed<num::HeunSolver>(f, {1.0, 0.0, 0.0},
                                                         0.0, 1.0, dt);
    return std::abs(m.x - std::exp(-1.0));
  };
  const double p = observed_order(error_for(0.1), error_for(0.05));
  EXPECT_NEAR(p, 2.0, 0.2);
}

TEST(Solvers, Rk45ObservedFifthOrder) {
  auto f = [](double, const Vec3& m) { return -m; };
  auto error_for = [&](double dt) {
    Vec3 m{1.0, 0.0, 0.0};
    double t = 0.0;
    while (t < 1.0 - 0.5 * dt) {
      m = num::Rk45Solver::step(f, t, m, dt).y;
      t += dt;
    }
    return std::abs(m.x - std::exp(-1.0) * std::exp(1.0 - t));
  };
  const double p = observed_order(error_for(0.1), error_for(0.05));
  EXPECT_NEAR(p, 5.0, 0.4);
}

TEST(Solvers, Rk45ErrorEstimateTracksTrueError) {
  // For one step of dm/dt = -m the embedded estimate must be within an
  // order of magnitude of the true local error.
  auto f = [](double, const Vec3& m) { return -m; };
  const double dt = 0.2;
  const auto r = num::Rk45Solver::step(f, 0.0, Vec3{1.0, 0.0, 0.0}, dt);
  const double true_error = std::abs(r.y.x - std::exp(-dt));
  EXPECT_GT(r.error, 0.0);
  EXPECT_LT(true_error, 10.0 * r.error + 1e-12);
}

TEST(Solvers, AdaptiveRk45MeetsTolerance) {
  // Rotation about z: |m| is conserved and the solution is known exactly.
  const Vec3 omega{0.0, 0.0, 4.0 * std::acos(-1.0)};
  auto f = [&](double, const Vec3& m) { return cross(omega, m); };
  num::AdaptiveConfig cfg;
  cfg.abs_tol = 1e-10;
  cfg.rel_tol = 1e-10;
  const Vec3 m1 = num::integrate_rk45(f, {1.0, 0.0, 0.0}, 0.0, 1.0, cfg);
  // Two full periods return to the start.
  EXPECT_NEAR(m1.x, 1.0, 1e-6);
  EXPECT_NEAR(m1.y, 0.0, 1e-6);
  EXPECT_NEAR(norm(m1), 1.0, 1e-8);
}

TEST(Solvers, AdaptiveRk45TakesFewerStepsThanFixedRk4) {
  // Stiffly decaying transient followed by a slow tail: the controller must
  // grow the step once the transient is resolved.
  auto f = [](double, const Vec3& m) {
    return Vec3{-50.0 * m.x, -0.1 * m.y, 0.0};
  };
  num::AdaptiveConfig cfg;
  cfg.abs_tol = 1e-8;
  cfg.rel_tol = 1e-6;
  double prev_t = 0.0;
  double min_step = std::numeric_limits<double>::infinity();
  double max_step = 0.0;
  num::integrate_rk45(f, {1.0, 1.0, 0.0}, 0.0, 10.0, cfg,
                      [&](double t, const Vec3&) {
                        const double h = t - prev_t;
                        prev_t = t;
                        min_step = std::min(min_step, h);
                        max_step = std::max(max_step, h);
                      });
  // The controller must resolve the fast transient with small steps and
  // then grow the step by over an order of magnitude on the tail -- the
  // payoff a fixed stability-limited RK4 step cannot deliver.
  EXPECT_GT(max_step / min_step, 10.0);
}

TEST(Solvers, AdaptiveRk45FailsFastOnNonFiniteState) {
  // A diverging RHS must raise NumericalError immediately, not spin through
  // max_steps with a NaN error estimate that is never accepted.
  auto f = [](double, const Vec3& m) {
    return Vec3{m.x * 1e300, 0.0, 0.0};  // overflows to inf within a step
  };
  EXPECT_THROW(num::integrate_rk45(f, {1.0, 0.0, 0.0}, 0.0, 1.0),
               util::NumericalError);
}

TEST(Solvers, AdaptiveRk45InvalidConfigThrows) {
  auto f = [](double, const Vec3& m) { return -m; };
  num::AdaptiveConfig cfg;
  cfg.abs_tol = 0.0;
  EXPECT_THROW(num::integrate_rk45(f, {1, 0, 0}, 0.0, 1.0, cfg),
               util::ContractViolation);
}

// --- LLG on the policies ----------------------------------------------------

TEST(LlgEngine, AdaptiveMatchesFixedStepRelaxation) {
  dyn::LlgParams p;
  p.h_applied = {0.0, 0.0, 2.0 * p.hk};  // strong field: relax toward +z
  const dyn::MacrospinSim sim(p);
  const Vec3 m0 = num::normalized({0.4, 0.0, -0.9});
  const Vec3 fixed = sim.run(m0, 2e-9, 1e-13);
  num::AdaptiveConfig cfg;
  cfg.abs_tol = 1e-10;
  cfg.rel_tol = 1e-10;
  const Vec3 adaptive = sim.run_adaptive(m0, 2e-9, cfg);
  EXPECT_TRUE(num::almost_equal(fixed, adaptive, 1e-6))
      << "fixed=(" << fixed.x << "," << fixed.y << "," << fixed.z
      << ") adaptive=(" << adaptive.x << "," << adaptive.y << ","
      << adaptive.z << ")";
}

TEST(LlgEngine, TrajectoryIncludesFinalPoint) {
  // 10 steps recorded every 3: the seed implementation dropped the final
  // point; it must now always be present.
  const dyn::MacrospinSim sim(dyn::LlgParams{});
  std::vector<dyn::TrajectoryPoint> traj;
  const double dt = 1e-12;
  const Vec3 end = sim.run({0.1, 0.0, 0.9949874371066199}, 10.5 * dt, dt,
                           &traj, 3);
  ASSERT_FALSE(traj.empty());
  EXPECT_NEAR(traj.back().t, 10.5 * dt, 1e-3 * dt);
  EXPECT_TRUE(num::almost_equal(traj.back().m, end, 0.0));
}

TEST(LlgEngine, HeunSwitchingProbabilityMatchesSunModel) {
  // The stochastic Heun trials and the analytic Sun-model success
  // probability must agree on the extremes: a pulse several times tw
  // switches essentially always, a small fraction of tw essentially never.
  const dev::MtjDevice device(dev::MtjParams::reference_device(35e-9));
  const double vp = 1.2;
  const double tw =
      device.switching_time(dev::SwitchDirection::kApToP, vp, 0.0);
  ASSERT_TRUE(std::isfinite(tw));

  util::Rng rng(99);
  const std::size_t trials = 30;
  const auto stats = dyn::llg_switching_stats(
      device, dev::SwitchDirection::kApToP, vp, 0.0, trials, rng, 6.0 * tw,
      1e-12);
  const double p_llg =
      static_cast<double>(stats.switched) / static_cast<double>(stats.trials);
  const double p_sun = device.write_success_probability(
      dev::SwitchDirection::kApToP, vp, 6.0 * tw, 0.0);
  EXPECT_GT(p_sun, 0.9);
  EXPECT_GT(p_llg, 0.9);
  EXPECT_NEAR(p_llg, p_sun, 0.12);

  // And the mean stochastic switching time stays commensurate with tw.
  EXPECT_GT(stats.mean_time, 0.05 * tw);
  EXPECT_LT(stats.mean_time, 20.0 * tw);
}

// --- coupling-kernel cache vs. direct dipole sum ----------------------------

TEST(KernelCache, MatchesDirectDipoleSum) {
  dev::StackGeometry stack;
  stack.ecd = 35e-9;
  const double pitch = 60e-9;
  const int radius = 2;
  const arr::ArrayFieldModel model(stack, pitch, radius);

  util::Rng rng(7);
  arr::DataGrid grid(5, 6, 0);
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      grid.set(r, c, rng.bernoulli(0.5) ? 1 : 0);
    }
  }

  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      // Direct evaluation: every aggressor layer field summed explicitly at
      // the victim's FL center, no kernel table involved.
      double direct = 0.0;
      for (int dr = -radius; dr <= radius; ++dr) {
        for (int dc = -radius; dc <= radius; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const long rr = static_cast<long>(r) + dr;
          const long cc = static_cast<long>(c) + dc;
          if (rr < 0 || rr >= static_cast<long>(grid.rows()) || cc < 0 ||
              cc >= static_cast<long>(grid.cols())) {
            continue;
          }
          const Vec3 cell{dc * pitch, dr * pitch, 0.0};
          const auto state = dev::bit_to_state(
              grid.at(static_cast<std::size_t>(rr),
                      static_cast<std::size_t>(cc)));
          const auto rl = stack.source_for(dev::Layer::kReferenceLayer, cell);
          const auto hl = stack.source_for(dev::Layer::kHardLayer, cell);
          const auto fl =
              stack.source_for(dev::Layer::kFreeLayer, cell, state);
          direct += mag::disk_field(rl, {}).z + mag::disk_field(hl, {}).z +
                    mag::disk_field(fl, {}).z;
        }
      }
      const double cached = model.field_at(grid, r, c);
      const double scale = std::max(std::abs(direct), 1.0);
      EXPECT_NEAR(cached, direct, 1e-12 * scale)
          << "cell (" << r << ", " << c << ")";
    }
  }
}

TEST(KernelCache, FixedMapPlusFlPartEqualsFieldAt) {
  dev::StackGeometry stack;
  stack.ecd = 35e-9;
  const arr::ArrayFieldModel model(stack, 70e-9, 1);
  arr::DataGrid grid(4, 4, 0);
  grid.set(1, 2, 1);
  grid.set(3, 0, 1);
  const auto fixed_map = model.fixed_field_map(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const double split =
          fixed_map[r * 4 + c] + model.fl_field_at(grid, r, c);
      EXPECT_NEAR(split, model.field_at(grid, r, c),
                  std::abs(split) * 1e-12 + 1e-15);
    }
  }
}

TEST(KernelCache, InteriorFixedFieldEqualsKernelSum) {
  dev::StackGeometry stack;
  stack.ecd = 35e-9;
  const arr::ArrayFieldModel model(stack, 70e-9, 2);
  // An interior cell of a grid large enough for the full window sees
  // exactly the interior fixed field.
  const auto fixed_map = model.fixed_field_map(5, 5);
  EXPECT_NEAR(fixed_map[2 * 5 + 2], model.interior_fixed_field(),
              std::abs(model.interior_fixed_field()) * 1e-12);
}

// --- RNG streams ------------------------------------------------------------

TEST(RngStream, DeterministicAndDecorrelated) {
  util::Rng a = util::Rng::stream(42, 7);
  util::Rng b = util::Rng::stream(42, 7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());

  // Neighboring streams must differ immediately.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 100; ++i) {
    firsts.insert(util::Rng::stream(42, i)());
  }
  EXPECT_EQ(firsts.size(), 100u);
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  eng::ThreadPool pool(4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_each(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  eng::ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.for_each(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, ReusableWithGrowingCounts) {
  // Regression: a worker waking late for a finished small job must not be
  // able to steal indices from a subsequent larger job (each job owns its
  // claim counter). Alternate tiny and large jobs to maximize stale wakes.
  eng::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    for (std::size_t count : {std::size_t{3}, std::size_t{257}}) {
      std::vector<std::atomic<int>> hits(count);
      pool.for_each(count, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
      }
    }
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  eng::ThreadPool pool(2);
  EXPECT_THROW(pool.for_each(64,
                             [](std::size_t i) {
                               if (i == 13) {
                                 throw std::runtime_error("boom");
                               }
                             }),
               std::runtime_error);
  // The pool survives the exception.
  std::atomic<int> n{0};
  pool.for_each(8, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, ZeroTasksReturnsWithoutInvoking) {
  // An empty job must neither invoke the task nor wedge the pool.
  eng::ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.for_each(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  // The pool is still fully functional afterwards.
  pool.for_each(16, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPool, ManyMoreChunksThanThreads) {
  // Far more indices than workers: the claim counter must hand out every
  // index exactly once with no gaps, and the caller must participate.
  eng::ThreadPool pool(2);
  constexpr std::size_t kCount = 50000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_each(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, NestedWaitOnADifferentPool) {
  // The documented reentrancy limit is per-pool: a task may block on a
  // *different* pool's for_each (e.g. a sweep body dispatching through a
  // second runner). Every inner job must complete, and the outer job must
  // drain even though its workers spend time parked inside inner waits.
  eng::ThreadPool outer(3);
  eng::ThreadPool inner(2);
  std::atomic<std::size_t> inner_sum{0};
  outer.for_each(8, [&](std::size_t) {
    inner.for_each(10, [&](std::size_t j) { inner_sum += j + 1; });
  });
  EXPECT_EQ(inner_sum.load(), 8u * 55u);
}

// --- Monte Carlo runner determinism -----------------------------------------

struct CountPartial {
  std::size_t hits = 0;
  util::RunningStats values;

  void merge(const CountPartial& o) {
    hits += o.hits;
    values.merge(o.values);
  }
};

CountPartial run_counting(unsigned threads, std::size_t chunk) {
  eng::RunnerConfig cfg;
  cfg.threads = threads;
  cfg.chunk_size = chunk;
  eng::MonteCarloRunner runner(cfg);
  return runner.run<CountPartial>(
      999, 1234, [](util::Rng& rng, std::size_t, CountPartial& acc) {
        const double u = rng.uniform();
        acc.hits += (u < 0.25);
        acc.values.add(u);
      });
}

TEST(MonteCarloRunner, BitIdenticalAcrossThreadCounts) {
  const auto serial = run_counting(1, 64);
  for (unsigned threads : {2u, 4u, 8u}) {
    const auto parallel = run_counting(threads, 64);
    EXPECT_EQ(parallel.hits, serial.hits);
    EXPECT_EQ(parallel.values.count(), serial.values.count());
    // Bit-identical, not merely close: merge order is fixed by chunk index.
    EXPECT_EQ(parallel.values.mean(), serial.values.mean());
    EXPECT_EQ(parallel.values.variance(), serial.values.variance());
  }
}

TEST(MonteCarloRunner, CountsInvariantUnderChunkSize) {
  // Per-trial streams do not depend on the chunking, so integer statistics
  // are identical for any chunk size (float reductions may differ in ulps).
  const auto a = run_counting(4, 1);
  const auto b = run_counting(4, 64);
  const auto c = run_counting(4, 1024);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(b.hits, c.hits);
}

TEST(MonteCarloRunner, SmallHeavyBatchesStillFanOut) {
  // 16 trials with the default chunk_size must split into 16 single-trial
  // chunks, not one serial chunk -- small batches of heavy trials (e.g.
  // stochastic LLG) are exactly where parallelism matters most.
  eng::MonteCarloRunner runner;
  EXPECT_EQ(runner.effective_chunk(16), 1u);
  EXPECT_EQ(runner.effective_chunk(128), 2u);
  EXPECT_EQ(runner.effective_chunk(20000), 64u);
}

TEST(MonteCarloRunner, ContextBuiltPerChunk) {
  eng::RunnerConfig cfg;
  cfg.threads = 2;
  cfg.chunk_size = 10;
  eng::MonteCarloRunner runner(cfg);
  std::atomic<int> contexts{0};
  struct Sum {
    std::size_t n = 0;
    void merge(const Sum& o) { n += o.n; }
  };
  const auto total = runner.run<Sum>(
      95, 1, [&] { ++contexts; return 0; },
      [](int&, util::Rng&, std::size_t, Sum& acc) { ++acc.n; });
  EXPECT_EQ(total.n, 95u);
  // effective chunk = min(chunk_size, ceil(95 / 64)) = 2 -> ceil(95/2)
  // chunks, one context each.
  EXPECT_EQ(contexts.load(), 48);
}

TEST(MonteCarloRunner, RejectsInvalidConfig) {
  eng::RunnerConfig cfg;
  cfg.chunk_size = 0;
  EXPECT_THROW(eng::MonteCarloRunner{cfg}, util::ConfigError);
}

// --- batched runner path ----------------------------------------------------

CountPartial run_counting_batched(unsigned threads, std::size_t chunk,
                                  std::size_t lane_width) {
  eng::RunnerConfig cfg;
  cfg.threads = threads;
  cfg.chunk_size = chunk;
  eng::MonteCarloRunner runner(cfg);
  return runner.run_batched<CountPartial>(
      999, 1234, lane_width,
      [](util::Rng* rngs, std::size_t, std::size_t lanes,
         CountPartial& acc) {
        for (std::size_t l = 0; l < lanes; ++l) {
          const double u = rngs[l].uniform();
          acc.hits += (u < 0.25);
          acc.values.add(u);
        }
      });
}

TEST(MonteCarloRunner, BatchedBitIdenticalToUnbatched) {
  // Same chunking, same per-trial streams, lane-ordered folding: any lane
  // width must reproduce run() bit for bit -- remainder blocks (999 % 8 and
  // 999 % 7 != 0) and lane_width = 1 included.
  const auto reference = run_counting(1, 64);
  for (std::size_t lane_width : {std::size_t{1}, std::size_t{7},
                                 std::size_t{8}, std::size_t{64}}) {
    for (unsigned threads : {1u, 4u}) {
      const auto batched = run_counting_batched(threads, 64, lane_width);
      EXPECT_EQ(batched.hits, reference.hits)
          << "lanes=" << lane_width << " threads=" << threads;
      EXPECT_EQ(batched.values.count(), reference.values.count());
      EXPECT_EQ(batched.values.mean(), reference.values.mean());
      EXPECT_EQ(batched.values.variance(), reference.values.variance());
    }
  }
}

TEST(MonteCarloRunner, BatchedRejectsZeroLaneWidth) {
  eng::MonteCarloRunner runner;
  struct Sum {
    std::size_t n = 0;
    void merge(const Sum& o) { n += o.n; }
  };
  EXPECT_THROW(
      runner.run_batched<Sum>(
          10, 1, 0,
          [](util::Rng*, std::size_t, std::size_t, Sum&) {}),
      util::ContractViolation);
}

// --- seeded WER: serial vs. 4 threads bit-identity --------------------------

mem::WerConfig engine_wer_config() {
  mem::WerConfig cfg;
  cfg.array.device = dev::MtjParams::reference_device(35e-9);
  cfg.array.pitch = 1.5 * 35e-9;
  cfg.array.rows = cfg.array.cols = 5;
  cfg.pulse.voltage = 0.9;
  cfg.pulse.width = 10e-9;
  cfg.direction = dev::SwitchDirection::kApToP;
  cfg.trials = 700;
  return cfg;
}

TEST(MonteCarloRunner, SeededWerBitIdenticalSerialVsFourThreads) {
  auto cfg = engine_wer_config();
  cfg.runner.threads = 1;
  util::Rng rng_serial(2024);
  const auto serial = mem::measure_wer(cfg, rng_serial);

  cfg.runner.threads = 4;
  util::Rng rng_parallel(2024);
  const auto parallel = mem::measure_wer(cfg, rng_parallel);

  EXPECT_EQ(parallel.errors, serial.errors);
  EXPECT_EQ(parallel.wer, serial.wer);
  EXPECT_EQ(parallel.mean_success_probability,
            serial.mean_success_probability);
  EXPECT_EQ(parallel.confidence.lo, serial.confidence.lo);
  EXPECT_EQ(parallel.confidence.hi, serial.confidence.hi);
}

TEST(MonteCarloRunner, BatchedWerBitIdenticalToScalarPath) {
  // Acceptance check of the batched migration: the batched WER path (the
  // default, batch_lanes = 8) must produce bit-identical error counts and
  // statistics to the scalar reference (batch_lanes = 0), at 1 and 4
  // threads, including the 700 % 8 != 0 remainder block.
  auto scalar_cfg = engine_wer_config();
  scalar_cfg.batch_lanes = 0;
  scalar_cfg.runner.threads = 1;
  util::Rng rng_scalar(2024);
  const auto scalar = mem::measure_wer(scalar_cfg, rng_scalar);

  for (unsigned threads : {1u, 4u}) {
    auto cfg = engine_wer_config();
    cfg.batch_lanes = 8;
    cfg.runner.threads = threads;
    util::Rng rng(2024);
    const auto batched = mem::measure_wer(cfg, rng);
    EXPECT_EQ(batched.errors, scalar.errors) << threads << " threads";
    EXPECT_EQ(batched.wer, scalar.wer);
    EXPECT_EQ(batched.mean_success_probability,
              scalar.mean_success_probability);
    EXPECT_EQ(batched.confidence.lo, scalar.confidence.lo);
    EXPECT_EQ(batched.confidence.hi, scalar.confidence.hi);
  }
}

TEST(RetentionEnsemble, BatchedBitIdenticalToScalarPath) {
  // The batched retention path hoists the flip-probability table per chunk;
  // draws and counts must still match the scalar reference exactly.
  mem::RetentionEnsembleConfig cfg;
  cfg.array.device = dev::MtjParams::reference_device(35e-9);
  cfg.array.device.delta0 = 8.0;
  cfg.array.pitch = 70e-9;
  cfg.array.rows = cfg.array.cols = 4;
  cfg.array.temperature = 400.0;
  cfg.hold = 1.0;
  cfg.trials = 150;

  cfg.batch_lanes = 0;
  cfg.runner.threads = 1;
  util::Rng rng_scalar(5);
  const auto scalar = mem::measure_retention_faults(cfg, rng_scalar);
  EXPECT_GT(scalar.faulty_trials, 0u);

  for (unsigned threads : {1u, 4u}) {
    cfg.batch_lanes = 8;
    cfg.runner.threads = threads;
    util::Rng rng(5);
    const auto batched = mem::measure_retention_faults(cfg, rng);
    EXPECT_EQ(batched.faulty_trials, scalar.faulty_trials)
        << threads << " threads";
    EXPECT_EQ(batched.total_flips, scalar.total_flips);
    EXPECT_EQ(batched.mean_flips, scalar.mean_flips);
  }
}

TEST(RetentionEnsemble, HotArrayFaultsAndIsThreadCountInvariant) {
  mem::RetentionEnsembleConfig cfg;
  cfg.array.device = dev::MtjParams::reference_device(35e-9);
  cfg.array.device.delta0 = 8.0;  // run hot so flips occur within the hold
  cfg.array.pitch = 70e-9;
  cfg.array.rows = cfg.array.cols = 4;
  cfg.array.temperature = 400.0;
  cfg.hold = 1.0;
  cfg.trials = 200;

  cfg.runner.threads = 1;
  util::Rng rng_a(5);
  const auto serial = mem::measure_retention_faults(cfg, rng_a);
  EXPECT_GT(serial.faulty_trials, 0u);
  EXPECT_LE(serial.confidence.lo, serial.fault_probability);
  EXPECT_GE(serial.confidence.hi, serial.fault_probability);

  cfg.runner.threads = 4;
  util::Rng rng_b(5);
  const auto parallel = mem::measure_retention_faults(cfg, rng_b);
  EXPECT_EQ(parallel.faulty_trials, serial.faulty_trials);
  EXPECT_EQ(parallel.total_flips, serial.total_flips);
}

// --- scale-out: shard / merge / checkpoint ----------------------------------

std::string make_temp_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("mram_engine_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// The accumulators the engine ships must satisfy the dump protocol without
// bespoke code: plain aggregates of counters and stats are trivially
// copyable.
static_assert(util::io::kSerializable<CountPartial>);
static_assert(util::io::kSerializable<util::WeightedStats>);
static_assert(util::io::kSerializable<std::vector<double>>);

TEST(ShardSpec, ChunkRangesPartitionExactly) {
  for (std::size_t count : {1u, 3u, 4u, 7u}) {
    std::size_t expected_lo = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const auto [lo, hi] = eng::ShardSpec{i, count}.chunk_range(64);
      EXPECT_EQ(lo, expected_lo) << i << "/" << count;
      EXPECT_LE(lo, hi);
      expected_lo = hi;
    }
    EXPECT_EQ(expected_lo, 64u) << count;
  }
  EXPECT_THROW(eng::ShardSpec{}.chunk_range(64), util::ConfigError);
  EXPECT_THROW((eng::ShardSpec{4, 4}).chunk_range(64), util::ConfigError);
}

CountPartial run_counting_io(const eng::ShardIo& io, unsigned threads = 1) {
  eng::RunnerConfig cfg;
  cfg.threads = threads;
  cfg.chunk_size = 64;
  eng::MonteCarloRunner runner(cfg);
  runner.set_shard_io(io);
  return runner.run<CountPartial>(
      999, 1234, [](util::Rng& rng, std::size_t, CountPartial& acc) {
        const double u = rng.uniform();
        acc.hits += (u < 0.25);
        acc.values.add(u);
      });
}

void expect_bit_identical(const CountPartial& got, const CountPartial& want) {
  EXPECT_EQ(got.hits, want.hits);
  EXPECT_EQ(got.values.count(), want.values.count());
  EXPECT_EQ(got.values.mean(), want.values.mean());
  EXPECT_EQ(got.values.variance(), want.values.variance());
  EXPECT_EQ(got.values.min(), want.values.min());
  EXPECT_EQ(got.values.max(), want.values.max());
}

TEST(ShardedRunner, FourWayMergeBitIdenticalToSingleProcess) {
  // The acceptance property of the tentpole: N independent shard processes
  // plus a merge reproduce the single-process left fold bit for bit --
  // Chan-style stats merges are NOT associative, so this only holds because
  // shards dump *per-chunk* partials and the merge replays the exact global
  // chunk order.
  const std::string dir = make_temp_dir("shard4");
  const auto reference = run_counting_io({});  // kOff
  for (std::size_t count : {1u, 4u}) {
    for (std::size_t i = 0; i < count; ++i) {
      eng::ShardIo io;
      io.mode = eng::ShardMode::kShard;
      io.shard = {i, count};
      io.dir = dir;
      run_counting_io(io, /*threads=*/i % 2 ? 4 : 1);
    }
    eng::ShardIo merge;
    merge.mode = eng::ShardMode::kMerge;
    merge.merge_count = count;
    merge.dir = dir;
    expect_bit_identical(run_counting_io(merge), reference);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
}

TEST(ShardedRunner, ShardDumpsValidateGeometryOnMerge) {
  const std::string dir = make_temp_dir("shard_geom");
  eng::ShardIo io;
  io.mode = eng::ShardMode::kShard;
  io.shard = {0, 2};
  io.dir = dir;
  run_counting_io(io);

  // Missing second shard: the merge must fail on the absent dump, naming it.
  eng::ShardIo merge;
  merge.mode = eng::ShardMode::kMerge;
  merge.merge_count = 2;
  merge.dir = dir;
  EXPECT_THROW(run_counting_io(merge), util::ConfigError);

  // A merge whose replay geometry differs (another seed) must reject the
  // dump instead of folding garbage.
  io.shard = {1, 2};
  run_counting_io(io);
  eng::RunnerConfig cfg;
  cfg.chunk_size = 64;
  eng::MonteCarloRunner other_seed(cfg);
  other_seed.set_shard_io(merge);
  EXPECT_THROW(other_seed.run<CountPartial>(
                   999, 4321,
                   [](util::Rng&, std::size_t, CountPartial&) {}),
               util::ConfigError);
}

TEST(ShardedRunner, NonSerializableAccumulatorIsRejected) {
  struct Opaque {
    std::vector<std::unique_ptr<int>> ptrs;  // no serialize(), not trivial
    void merge(const Opaque&) {}
  };
  static_assert(!util::io::kSerializable<Opaque>);
  eng::MonteCarloRunner runner;
  eng::ShardIo io;
  io.mode = eng::ShardMode::kShard;
  io.shard = {0, 2};
  io.dir = make_temp_dir("nonser");
  runner.set_shard_io(io);
  EXPECT_THROW(
      runner.run<Opaque>(100, 1, [](util::Rng&, std::size_t, Opaque&) {}),
      util::ConfigError);
}

TEST(CheckpointRunner, UninterruptedRunMatchesPlainRun) {
  const std::string dir = make_temp_dir("ckpt_plain");
  eng::ShardIo io;
  io.mode = eng::ShardMode::kCheckpoint;
  io.dir = dir;
  io.checkpoint_chunk_stride = 3;
  expect_bit_identical(run_counting_io(io), run_counting_io({}));
  // The completed call left a .done snapshot and no .part behind.
  EXPECT_TRUE(std::filesystem::exists(dir + "/call-000000.done"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/call-000000.part"));
}

TEST(CheckpointRunner, KilledRunResumesBitIdentically) {
  const std::string dir = make_temp_dir("ckpt_resume");
  const auto reference = run_counting_io({});

  // First attempt dies mid-run: trials past 600 throw, which surfaces after
  // the pool drains -- ranges completed before the failing one have
  // committed .part snapshots.
  eng::RunnerConfig cfg;
  cfg.chunk_size = 64;  // 999 trials -> 63 chunks of effective size 16
  eng::ShardIo io;
  io.mode = eng::ShardMode::kCheckpoint;
  io.dir = dir;
  io.checkpoint_chunk_stride = 4;
  {
    eng::MonteCarloRunner runner(cfg);
    runner.set_shard_io(io);
    EXPECT_THROW(
        runner.run<CountPartial>(
            999, 1234,
            [](util::Rng& rng, std::size_t i, CountPartial& acc) {
              if (i >= 600) throw std::runtime_error("killed");
              const double u = rng.uniform();
              acc.hits += (u < 0.25);
              acc.values.add(u);
            }),
        std::runtime_error);
  }
  ASSERT_TRUE(std::filesystem::exists(dir + "/call-000000.part"));

  // The resumed run continues from the snapshot prefix: bit-identical total,
  // and the already-checkpointed trials are not re-executed.
  std::size_t executed = 0;
  eng::MonteCarloRunner runner(cfg);
  io.resume = true;
  runner.set_shard_io(io);
  const auto resumed = runner.run<CountPartial>(
      999, 1234, [&](util::Rng& rng, std::size_t, CountPartial& acc) {
        ++executed;
        const double u = rng.uniform();
        acc.hits += (u < 0.25);
        acc.values.add(u);
      });
  expect_bit_identical(resumed, reference);
  EXPECT_LT(executed, 999u);

  // A second resume finds the .done snapshot and executes nothing at all.
  eng::MonteCarloRunner again(cfg);
  again.set_shard_io(io);
  const auto loaded = again.run<CountPartial>(
      999, 1234, [](util::Rng&, std::size_t, CountPartial&) {
        ADD_FAILURE() << "done call must load, not re-run";
      });
  expect_bit_identical(loaded, reference);
}

TEST(CheckpointRunner, ResumeRejectsMismatchedSnapshot) {
  // A snapshot produced under one seed must not silently resume a run with
  // another: the header check fails loudly.
  const std::string dir = make_temp_dir("ckpt_mismatch");
  eng::ShardIo io;
  io.mode = eng::ShardMode::kCheckpoint;
  io.dir = dir;
  run_counting_io(io);
  io.resume = true;
  eng::RunnerConfig cfg;
  cfg.chunk_size = 64;
  eng::MonteCarloRunner runner(cfg);
  runner.set_shard_io(io);
  EXPECT_THROW(runner.run<CountPartial>(
                   999, 777, [](util::Rng&, std::size_t, CountPartial&) {}),
               util::ConfigError);
}

TEST(ShardedRunner, BatchedPathShardsIdentically) {
  // run_batched shares run()'s chunk geometry, so the same dump/merge cycle
  // must hold on the batched path too (lane width independent).
  const std::string dir = make_temp_dir("shard_batched");
  const auto reference = run_counting(1, 64);
  auto batched_io = [&](const eng::ShardIo& io) {
    eng::RunnerConfig cfg;
    cfg.chunk_size = 64;
    eng::MonteCarloRunner runner(cfg);
    runner.set_shard_io(io);
    return runner.run_batched<CountPartial>(
        999, 1234, 16,
        [](util::Rng* rngs, std::size_t, std::size_t lanes,
           CountPartial& acc) {
          for (std::size_t l = 0; l < lanes; ++l) {
            const double u = rngs[l].uniform();
            acc.hits += (u < 0.25);
            acc.values.add(u);
          }
        });
  };
  for (std::size_t i = 0; i < 3; ++i) {
    eng::ShardIo io;
    io.mode = eng::ShardMode::kShard;
    io.shard = {i, 3};
    io.dir = dir;
    batched_io(io);
  }
  eng::ShardIo merge;
  merge.mode = eng::ShardMode::kMerge;
  merge.merge_count = 3;
  merge.dir = dir;
  expect_bit_identical(batched_io(merge), reference);
}

// --- RunningStats::merge ----------------------------------------------------

TEST(RunningStatsMerge, MatchesSerialAccumulation) {
  util::Rng rng(3);
  util::RunningStats serial, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    serial.add(x);
    (i < 200 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), serial.count());
  EXPECT_NEAR(left.mean(), serial.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), serial.variance(), 1e-9);
  EXPECT_EQ(left.min(), serial.min());
  EXPECT_EQ(left.max(), serial.max());
}

TEST(RunningStatsMerge, EmptySidesAreNeutral) {
  util::RunningStats a, b;
  a.merge(b);
  EXPECT_TRUE(a.empty());
  b.add(1.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.mean(), 1.5);
  util::RunningStats c;
  a.merge(c);
  EXPECT_EQ(a.count(), 1u);
}

}  // namespace
}  // namespace mram
